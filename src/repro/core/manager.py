"""Online GPU-buffer management with the two RecMG models (paper §VI-B).

Implements the deployment loop around Algorithms 1 and 2: demand
accesses are served from the priority buffer; at each chunk boundary the
caching model assigns 1-bit priorities to the just-accessed trunk
(``priority = C[i] + eviction_speed``) and the prefetch model's outputs
are fetched into the buffer at ``priority = eviction_speed``.  Eviction
picks the minimum-priority entry and ages everyone (Algorithm 2).

Both models are optional, which yields the paper's ablation variants:
no models = aged-priority LRU-like buffer; caching model only = "CM";
prefetch model only on LRU = "LRU+PF" (see :class:`ModelPrefetcher`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

import numpy as np

from ..cache.buffer import FastPriorityBuffer
from ..prefetch.base import Prefetcher
from ..prefetch.harness import AccessBreakdown
from ..traces.access import Trace
from .caching_model import CachingModel
from .config import RecMGConfig
from .features import FeatureEncoder
from .prefetch_model import PrefetchModel


@dataclass
class ManagerStats:
    """Counters accumulated by one deployment run."""

    breakdown: AccessBreakdown
    prefetches_issued: int
    prefetches_useful: int
    evictions: int

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def hit_rate(self) -> float:
        return self.breakdown.hit_rate


class RecMGManager:
    """Drives the priority GPU buffer with the caching/prefetch models."""

    def __init__(self, capacity: int, encoder: FeatureEncoder,
                 config: RecMGConfig,
                 caching_model: Optional[CachingModel] = None,
                 prefetch_model: Optional[PrefetchModel] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.encoder = encoder
        self.config = config
        self.caching_model = caching_model
        self.prefetch_model = prefetch_model
        self.buffer = FastPriorityBuffer(capacity)
        self._prefetched: Set[int] = set()
        self.breakdown = AccessBreakdown()
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _evict_for_space(self) -> None:
        while self.buffer.is_full:
            victim = self.buffer.evict_one()
            self._prefetched.discard(victim)
            self.evictions += 1

    def _demand_access(self, key: int) -> None:
        speed = self.config.eviction_speed
        if key in self.buffer:
            if key in self._prefetched:
                self._prefetched.discard(key)
                self.breakdown.prefetch_hits += 1
                self.prefetches_useful += 1
            else:
                self.breakdown.cache_hits += 1
            # Recency refresh; the caching model overrides at chunk end.
            self.buffer.set_priority(key, speed)
        else:
            self.breakdown.on_demand += 1
            self._evict_for_space()
            self.buffer.insert(key, speed)

    def _apply_caching_bits(self, keys: np.ndarray, bits: np.ndarray) -> None:
        """Algorithm 1 lines 4-7, with a widened differential.

        The paper sets ``priority[T[i]] = C[i] + eviction_speed`` inside
        TorchRec's set-associative buffer, where the one-step gap rides
        on top of per-set RRIP dynamics.  In a fully associative buffer
        every miss ages *all* entries, so a ±1 gap is erased within one
        eviction; we keep the same two-level scheme but spread it across
        the aging scale (friendly = eviction_speed + 1, averse = 1),
        which is the Hawkeye-style insertion the paper's labels encode.
        """
        speed = self.config.eviction_speed
        for key, bit in zip(keys, bits):
            key = int(key)
            if key in self.buffer:
                if bit:
                    self.buffer.set_priority(key, speed + 1)
                else:
                    self.buffer.demote(key)

    def _apply_prefetches(self, predicted: np.ndarray) -> None:
        """Algorithm 1 lines 9-15: fetch P[i] at priority eviction_speed."""
        speed = self.config.eviction_speed
        budget = self.config.max_prefetch_per_chunk
        for key in predicted[:budget]:
            key = int(key)
            if key in self.buffer:
                continue
            self.prefetches_issued += 1
            self._evict_for_space()
            self.buffer.insert(key, speed)
            self._prefetched.add(key)

    # ------------------------------------------------------------------
    def run(self, trace: Trace, inference_batch: int = 64) -> ManagerStats:
        """Serve ``trace`` end to end; returns the access breakdown.

        Model inference is batched across chunks up front — the result
        is identical to per-chunk inference (the models are stateless
        across chunks) but an order of magnitude faster, mirroring the
        paper's batched CPU serving.
        """
        from .features import EncodedChunks

        config = self.config
        dense = self.encoder.dense_ids(trace)
        tables = self.encoder.table_indices(trace)
        hashed = dense % config.hash_buckets
        norm = self.encoder.normalize(dense)
        freq = self.encoder.freq_values(dense)
        length = config.input_len
        n = len(dense)
        num_chunks = n // length

        bits_all = None
        preds_all = None
        if num_chunks and (self.caching_model or self.prefetch_model):
            starts = np.arange(num_chunks) * length
            idx = starts[:, None] + np.arange(length)[None, :]
            chunks = EncodedChunks(
                table_ids=tables[idx], hashed_rows=hashed[idx],
                norm_index=norm[idx], freq=freq[idx],
                dense_ids=dense[idx], starts=starts,
            )
            if self.caching_model is not None:
                parts = [self.caching_model.predict(
                            chunks, sel=np.arange(lo, min(lo + inference_batch,
                                                          num_chunks)))
                         for lo in range(0, num_chunks, inference_batch)]
                bits_all = np.concatenate(parts, axis=0)
            if self.prefetch_model is not None:
                parts = [self.prefetch_model.predict_indices(
                            chunks, self.encoder,
                            sel=np.arange(lo, min(lo + inference_batch,
                                                  num_chunks)))
                         for lo in range(0, num_chunks, inference_batch)]
                preds_all = np.concatenate(parts, axis=0)

        for chunk_idx in range(num_chunks):
            start = chunk_idx * length
            for i in range(start, start + length):
                self._demand_access(int(dense[i]))
            if bits_all is not None:
                self._apply_caching_bits(dense[start:start + length],
                                         bits_all[chunk_idx])
            if preds_all is not None:
                self._apply_prefetches(preds_all[chunk_idx])
        for i in range(num_chunks * length, n):  # trailing partial chunk
            self._demand_access(int(dense[i]))
        return ManagerStats(
            breakdown=self.breakdown,
            prefetches_issued=self.prefetches_issued,
            prefetches_useful=self.prefetches_useful,
            evictions=self.evictions,
        )


class ModelPrefetcher(Prefetcher):
    """Adapts the RecMG prefetch model to the :class:`Prefetcher`
    interface over *dense* keys (for LRU+PF and PM+LRU baselines)."""

    name = "PM"

    def __init__(self, model: PrefetchModel, encoder: FeatureEncoder,
                 config: RecMGConfig) -> None:
        self.model = model
        self.encoder = encoder
        self.config = config
        self._tables: Deque[int] = deque(maxlen=config.input_len)
        self._dense: Deque[int] = deque(maxlen=config.input_len)
        self._step = 0

    def reset(self) -> None:
        self._tables.clear()
        self._dense.clear()
        self._step = 0

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        config = self.config
        num_tables = max(1, self.encoder.num_tables)
        self._tables.append(pc % num_tables)
        self._dense.append(key)
        self._step += 1
        if (len(self._dense) < config.input_len
                or self._step % config.input_len != 0):
            return []
        dense = np.asarray(self._dense, dtype=np.int64)
        tables = np.asarray(self._tables, dtype=np.int64)
        predicted = self.model.predict_single(
            tables,
            dense % config.hash_buckets,
            self.encoder.normalize(dense),
            self.encoder.freq_values(dense),
            self.encoder,
        )
        return [int(p) for p in predicted[: config.max_prefetch_per_chunk]]
