"""Online GPU-buffer management with the two RecMG models (paper §VI-B).

Implements the deployment loop around Algorithms 1 and 2: demand
accesses are served from the priority buffer; at each chunk boundary the
caching model assigns 1-bit priorities to the just-accessed trunk
(``priority = C[i] + eviction_speed``) and the prefetch model's outputs
are fetched into the buffer at ``priority = eviction_speed``.  Eviction
picks the minimum-priority entry and ages everyone (Algorithm 2).

Both models are optional, which yields the paper's ablation variants:
no models = aged-priority LRU-like buffer; caching model only = "CM";
prefetch model only on LRU = "LRU+PF" (see :class:`ModelPrefetcher`).

The buffer backend is selected by ``buffer_impl`` (constructor argument,
falling back to ``config.buffer_impl``; see :mod:`repro.cache.buffer`):

* ``"fast"`` (default) — exact semantics; with a fitted encoder the
  buffer runs in dense (``key_space``) mode and ``fast_serve`` uses the
  *batched exact engine* (:meth:`RecMGManager._serve_demand_batched_exact`):
  one residency gather classifies the segment, one vectorized victim
  selection pre-reclaims the space it needs, and one bulk scatter
  stores it — decision-for-decision and state-identical to the scalar
  audit loop (the buffer refuses any segment where bulk reclaim could
  diverge, and the engine splits or falls back).  Dict mode keeps the
  lazy-heap bulk pre-pass, likewise bit-identical.
* ``"reference"`` — exact O(n) audit backend; always served through the
  scalar loop.
* ``"clock"`` — approximate array-backed CLOCK; ``fast_serve`` switches
  to the *batched-reclaim* engine, which pre-reclaims space for each
  whole segment with one :meth:`ClockBuffer.evict_batch` call and then
  resolves every access through the eviction-free bulk path.  Hit/miss
  streams may differ from the exact backends (approximate victim
  order), but counters stay conserved and capacity is never exceeded.

``num_shards > 1`` (constructor argument or ``config.num_shards``,
with ``shard_policy`` picking the router) partitions the dense id
universe across independent shards
(:class:`repro.cache.sharding.ShardedBuffer`); ``fast_serve`` then
routes whole demand segments shard-wise
(:meth:`RecMGManager._serve_demand_sharded`): one vectorized scatter,
the matching per-shard batched scheme (batched-reclaim on clock
shards, bulk-exact ``serve_segment`` on fast shards), one gather back
into segment-order accounting.  Eviction-for-space is per shard — the
scalar paths route through
:func:`repro.cache.sharding.backend_for_key` so a miss evicts from the
shard that will hold the key.

``concurrency="threads"`` (constructor argument or
``config.concurrency``; requires a sharded buffer) moves the per-shard
serves onto a persistent
:class:`repro.serving.workers.ShardWorkerPool`: each shard is pinned
to one worker thread (``num_workers`` may be smaller than the shard
count; shards then time-share workers FIFO), sub-segments are
dispatched shard-wise and the results gathered back **in shard order**
— so counters, decision streams and final buffer state are
*bit-identical* to the serial shard-wise loop (the 40-seed sharded
differential in ``tests/test_sharding.py`` and the multi-worker stress
suite in ``tests/test_serving_concurrent.py`` both pin this).  Without
model chunks, :meth:`RecMGManager.run` additionally *pipelines* serving
blocks: up to a bounded number of blocks are in flight at once, so a
worker never idles at a block boundary waiting for its siblings — and
an active priority provider rides the same pipeline, its per-block
priority writes split per shard and applied on the pinned workers
(:meth:`RecMGManager._submit_sink`) instead of forcing a per-block
barrier (``tests/test_sink_pipelining.py`` pins the bit-identity).
Per-batch wall latency, queue depth and per-shard utilization land in
:attr:`RecMGManager.serving_metrics`
(:class:`repro.serving.metrics.ServingMetrics`);
:meth:`RecMGManager.serve_batch` is the front door the admission
queue/batcher stack (:mod:`repro.serving.admission`) drives.

``rebalance_interval > 0`` (``config.rebalance_interval``) turns on
**online elastic rebalancing**: the manager accumulates a per-shard
traffic EWMA at the block gather (one route already scatters every
block shard-wise, so the counts are free), and every ``interval``
served accesses compares the traffic shares against the current
capacity split.  When the worst shard's imbalance exceeds
``rebalance_threshold`` it calls
:meth:`repro.cache.sharding.ShardedBuffer.rebalance` with the EWMA
weights — live key migration between the compressed shard universes,
eviction state carried (see :mod:`repro.cache.sharding`).  The call
always lands at a block boundary; under ``concurrency="threads"`` the
manager first drains its pipeline and runs
:meth:`repro.serving.workers.ShardWorkerPool.barrier`, so the
migration never overlaps an in-flight per-shard job and the decision
stream stays bit-identical to the serial engine rebalancing at the
same block indices (pinned by ``tests/test_rebalancing.py``).
Donor-shrink victims count as manager evictions; migrated-key counts
and the serving pause land in :attr:`RecMGManager.serving_metrics`.

Serving is backend-agnostic through the **bulk residency/priority
protocol** (see :mod:`repro.cache.buffer`): every backend answers
``contains_batch(keys) -> bool[:]`` and accepts
``set_priority_batch``/``demote_batch``.  The manager fits the encoder's
dense-id universe as the buffer's ``key_space``, so the clock backend
classifies a whole segment with one residency-bitmap gather
(:class:`repro.cache.residency.ResidencyIndex`) instead of a per-key
dict loop — both the batched-reclaim engine and the chunk-boundary
caching-bit writes (:meth:`RecMGManager._apply_caching_bits`) ride on
it.  The exact backends answer the same calls off their entry dicts, so
no call site branches on the backend.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

import numpy as np

from ..cache.buffer import (
    FastPriorityBuffer,
    iter_serve_segments,
    make_buffer,
    reclaim_batch_space,
)
from ..cache.sharding import ShardedBuffer, backend_for_key
from ..prefetch.base import Prefetcher
from ..prefetch.harness import AccessBreakdown
from ..serving.metrics import ServingMetrics
from ..serving.priorities import LiftGuard, apply_caching_bits, make_provider
from ..serving.workers import ShardWorkerPool
from ..traces.access import Trace
from .caching_model import CachingModel
from .config import RecMGConfig
from .features import FeatureEncoder
from .prefetch_model import PrefetchModel

#: Engine-dispatch policies accepted by ``concurrency=`` (constructor
#: argument and :class:`RecMGConfig` field).
CONCURRENCY_MODES = ("serial", "threads")


@dataclass
class ManagerStats:
    """Counters accumulated by one deployment run."""

    breakdown: AccessBreakdown
    prefetches_issued: int
    prefetches_useful: int
    evictions: int

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def hit_rate(self) -> float:
        return self.breakdown.hit_rate


class RecMGManager:
    """Drives the priority GPU buffer with the caching/prefetch models."""

    #: Block size for bulk serving outside model chunks.
    _SERVE_BLOCK = 512
    #: Below this length a rejected exact segment goes straight to the
    #: scalar audit loop instead of splitting further.
    _SCALAR_FALLBACK = 64
    #: Upper bound on serving blocks in flight when the concurrent
    #: engine pipelines a whole trace (bounds gather-buffer memory
    #: while keeping every shard worker fed across block boundaries).
    _MAX_INFLIGHT_BLOCKS = 8
    #: EWMA smoothing factor for the per-shard traffic shares the
    #: online rebalancer tracks (per gathered block/segment; higher =
    #: reacts faster to a drifting hot band, lower = steadier split).
    _REBALANCE_EWMA = 0.2
    #: Pipeline the streaming tail *through an active provider* (the
    #: per-shard sink).  True in production; differential tests and the
    #: pipelined-vs-barrier bench flip it per instance to reproduce the
    #: per-block barrier form the sink used before it was split
    #: per shard.
    _pipeline_sink = True

    def __init__(self, capacity: int, encoder: FeatureEncoder,
                 config: RecMGConfig,
                 caching_model: Optional[CachingModel] = None,
                 prefetch_model: Optional[PrefetchModel] = None,
                 buffer_impl: Optional[str] = None,
                 key_space="auto",
                 num_shards: Optional[int] = None,
                 shard_policy: Optional[str] = None,
                 shard_weights=None,
                 concurrency: Optional[str] = None,
                 num_workers: Optional[int] = None,
                 priority_mode: Optional[str] = None,
                 rebalance_interval: Optional[int] = None,
                 rebalance_threshold: Optional[float] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.encoder = encoder
        self.config = config
        self.caching_model = caching_model
        self.prefetch_model = prefetch_model
        self.buffer_impl = (buffer_impl if buffer_impl is not None
                            else getattr(config, "buffer_impl", "fast"))
        self.num_shards = (num_shards if num_shards is not None
                           else getattr(config, "num_shards", 1))
        self.shard_policy = (shard_policy if shard_policy is not None
                             else getattr(config, "shard_policy",
                                          "contiguous"))
        self.shard_weights = (shard_weights if shard_weights is not None
                              else getattr(config, "shard_weights", None))
        # A fitted encoder fixes the dense-id universe, which lets the
        # clock and fast backends run array-native membership (residency
        # bitmap); unseen keys map above the vocabulary and spill
        # safely.  ``key_space="auto"`` (the default) fits that
        # universe; ``None`` forces dict membership (the pre-dense
        # engines, kept measurable for the perf benches); an int pins
        # an explicit universe.  ``num_shards > 1`` partitions that
        # universe across independent shards (see
        # :mod:`repro.cache.sharding`) — it therefore requires a
        # resolvable key_space (``make_buffer`` rejects otherwise).
        if key_space == "auto":
            key_space = (encoder.vocab_size
                         if getattr(encoder, "fitted", False)
                         and encoder.vocab_size > 0 else None)
        self.buffer = make_buffer(self.buffer_impl, capacity,
                                  key_space=key_space,
                                  num_shards=self.num_shards,
                                  shard_policy=self.shard_policy,
                                  shard_weights=self.shard_weights)
        # Concurrent dispatch (see module docstring): "serial" keeps the
        # single-threaded engines; "threads" serves shard sub-segments
        # on a persistent per-shard worker pool, gathered in shard
        # order (decision-identical to serial).  The pool is built
        # lazily on first concurrent serve, so serial managers never
        # pay a thread.
        self.concurrency = (concurrency if concurrency is not None
                            else getattr(config, "concurrency", "serial"))
        if self.concurrency not in CONCURRENCY_MODES:
            raise ValueError(
                f"concurrency must be one of {CONCURRENCY_MODES}, "
                f"got {self.concurrency!r}")
        self.num_workers = (num_workers if num_workers is not None
                            else getattr(config, "num_workers", None))
        if self.concurrency == "threads" and not isinstance(
                self.buffer, ShardedBuffer):
            raise ValueError(
                "concurrency='threads' dispatches per-shard workers and "
                "therefore requires num_shards > 1 (a ShardedBuffer); "
                f"got num_shards={self.num_shards}")
        self._pool: Optional[ShardWorkerPool] = None
        #: Per-batch latency / queue-depth / batch-size telemetry; the
        #: concurrent engine and :meth:`serve_batch` record into it.
        self.serving_metrics = ServingMetrics()
        # Model-in-the-loop serving (see :mod:`repro.serving.priorities`):
        # the provider maps served blocks to caching bits and the sink
        # (:meth:`_sink_provider`) applies them through the same bulk
        # priority writes the offline chunk pass uses.  "none" installs
        # the NullProvider and the sink is never invoked — bit-identical
        # to the provider-free engines (pinned by the goldens and the
        # cross-backend differentials).
        self.priority_mode = (priority_mode if priority_mode is not None
                              else getattr(config, "priority_mode", "none"))
        self.priority_provider = make_provider(
            self.priority_mode, caching_model, encoder, config,
            metrics=self.serving_metrics, capacity=capacity)
        self._provider_active = self.priority_provider.mode != "none"
        #: Optional lift guard (``config.priority_lift_guard`` > 0 with
        #: an active provider): online A/B of guided vs model-free
        #: phases; while measured lift is negative the sink withholds
        #: the provider's bits — guidance degrades to model-free, never
        #: below it.  See :class:`repro.serving.priorities.LiftGuard`.
        self.lift_guard: Optional[LiftGuard] = None
        if self._provider_active and getattr(config,
                                             "priority_lift_guard", 0):
            self.lift_guard = LiftGuard(
                phase_blocks=config.priority_lift_guard,
                margin=getattr(config, "priority_lift_margin", 0.0))
        # Online elastic rebalancing (module docstring): traffic EWMAs
        # accumulated at the gather, checked every ``interval`` served
        # accesses, migration via ShardedBuffer.rebalance at a block
        # boundary (after a pipeline drain + worker barrier under
        # ``concurrency="threads"``).
        self.rebalance_interval = (
            rebalance_interval if rebalance_interval is not None
            else getattr(config, "rebalance_interval", 0))
        self.rebalance_threshold = (
            rebalance_threshold if rebalance_threshold is not None
            else getattr(config, "rebalance_threshold", 0.1))
        if self.rebalance_interval and not isinstance(self.buffer,
                                                      ShardedBuffer):
            raise ValueError(
                "rebalance_interval > 0 migrates keys between shards "
                "and therefore requires num_shards > 1 (a "
                f"ShardedBuffer); got num_shards={self.num_shards}")
        self._shard_traffic = np.zeros(
            getattr(self.buffer, "num_shards", 1), dtype=np.float64)
        self._accesses_since_rebalance = 0
        self._prefetched: Set[int] = set()
        self.breakdown = AccessBreakdown()
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        self.evictions = 0
        #: Per-access hit decisions of the last ``run(...,
        #: record_decisions=True)``; None otherwise.
        self.last_decisions: Optional[np.ndarray] = None
        self._record_hits: Optional[List[bool]] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ShardWorkerPool:
        """The persistent shard worker pool (built on first use)."""
        if self._pool is None or self._pool.closed:
            self._pool = ShardWorkerPool(self.buffer.num_shards,
                                         self.num_workers)
        return self._pool

    def close(self) -> None:
        """Join the worker pool, if one was ever built, and the
        priority provider's refresh worker (idempotent; serial
        model-free managers no-op).  The manager remains usable — a
        later concurrent serve builds a fresh pool — but an async
        provider stays closed: serving continues on its last refreshed
        bits, frozen."""
        if self._pool is not None:
            self._pool.close()
        self.priority_provider.close()

    def __enter__(self) -> "RecMGManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _evict_for_space(self, key: Optional[int] = None) -> Optional[int]:
        """Evict until there is room for one insert — of ``key``, when
        given: on a sharded buffer space must come from the shard that
        will hold the key (other shards' free slots are unreachable),
        so the loop targets ``key``'s routed shard."""
        buffer = (backend_for_key(self.buffer, key) if key is not None
                  else self.buffer)
        victim = None
        while buffer.is_full:
            victim = buffer.evict_one()
            self._prefetched.discard(victim)
            self.evictions += 1
        return victim

    def _demand_access(self, key: int) -> Optional[int]:
        """Serve one demand access; returns the evicted victim, if any."""
        speed = self.config.eviction_speed
        if key in self.buffer:
            if key in self._prefetched:
                self._prefetched.discard(key)
                self.breakdown.prefetch_hits += 1
                self.prefetches_useful += 1
            else:
                self.breakdown.cache_hits += 1
            # Recency refresh; the caching model overrides at chunk end.
            self.buffer.set_priority(key, speed)
            return None
        self.breakdown.on_demand += 1
        victim = self._evict_for_space(key)
        self.buffer.insert(key, speed)
        return victim

    def _apply_caching_bits(self, keys: np.ndarray, bits: np.ndarray) -> None:
        """Algorithm 1 lines 4-7 — the bulk caching-bit write shared by
        the offline chunk pass and the provider sink.  The applier
        itself lives in :func:`repro.serving.priorities.apply_caching_bits`
        (one residency gather, last-occurrence-wins dedup, friendly
        keys to ``eviction_speed + 1`` via ``set_priority_batch``,
        averse keys demoted), where its scalar-equivalence argument is
        documented."""
        apply_caching_bits(self.buffer, keys, bits,
                           self.config.eviction_speed)

    def _provider_bits(self, segment: np.ndarray,
                       guided: bool = True) -> Optional[Tuple]:
        """Observe ``segment`` and collect its applicable caching bits.

        The shared front half of both sink forms
        (:meth:`_sink_provider`, :meth:`_submit_sink`): feed the stream
        to the provider (always — the async refresh queue and the
        retraining window must see control blocks too), then, when the
        block is ``guided``, gather its tri-state bits, sample
        staleness into :attr:`serving_metrics`, and pre-filter the
        ``-1`` ("no prediction") positions.  Returns ``(keys, bits)``
        with only ``>= 0`` bits, or ``None`` when there is nothing to
        apply — a lift-guard control block (``guided=False``), an
        empty/unpredicted block, or a wholly cold async table.
        """
        provider = self.priority_provider
        provider.observe(segment)
        if not guided:
            return None
        bits = provider.bits_for(segment)
        staleness = provider.staleness_blocks()
        if staleness is not None:
            self.serving_metrics.record_staleness(staleness)
        if bits is None:
            return None
        valid = bits >= 0
        if not valid.all():
            if not valid.any():
                return None
            segment = segment[valid]
            bits = bits[valid]
        return segment, bits

    def _sink_provider(self, segment: np.ndarray,
                       guided: bool = True) -> None:
        """The provider sink, barrier form: after a block is fully
        served, feed the stream to the priority provider and apply
        whatever caching bits it has for the block — Algorithm 1's
        priority write, driven from the live stream instead of the
        offline chunk pass.

        Tri-state bits: positions ``>= 0`` apply through
        :func:`apply_caching_bits`; ``-1`` ("no prediction" — an async
        table slot not yet refreshed, or a spillover key) keeps its
        recency priority, so a cold provider degrades to model-free
        behavior.  Staleness (async refresh lag) is sampled per served
        block into :attr:`serving_metrics`.  ``guided=False`` (a
        lift-guard control block) observes but withholds the bits —
        the block serves model-free.

        On a sharded buffer the bits are split along
        ``iter_shard_segments``' route and applied per shard through
        its :class:`~repro.cache.sharding.CompressedShardView` — the
        same one-scatter route the engines serve through, instead of
        the three global scatters the whole-buffer bulk calls would
        cost (the split-identity argument lives on
        :func:`apply_caching_bits`).  The concurrent streaming path
        uses :meth:`_submit_sink`, which dispatches exactly these
        per-shard applies to the pinned workers instead of running
        them inline.

        Called at block granularity from the top-level serve sites
        (:meth:`serve_batch`, :meth:`run`'s chunk and streaming loops)
        — never from inside an engine, so an engine's internal
        fallbacks (e.g. the exact engine's scalar stretches) cannot
        double-sink a block.
        """
        segment = np.asarray(segment, dtype=np.int64)
        if segment.size == 0:
            return
        got = self._provider_bits(segment, guided)
        if got is None:
            return
        keys, bits = got
        buffer = self.buffer
        speed = self.config.eviction_speed
        if isinstance(buffer, ShardedBuffer):
            for _, shard, positions, sub in buffer.iter_shard_segments(
                    keys):
                apply_caching_bits(shard, sub, bits[positions], speed)
        else:
            apply_caching_bits(buffer, keys, bits, speed)

    def _submit_sink(self, segment: np.ndarray,
                     guided: bool = True) -> List:
        """The provider sink, pipelined form: split the block's bits
        per shard and dispatch one :func:`apply_caching_bits` job per
        touched shard to that shard's pinned worker; returns the apply
        futures (the stream's drain joins them with the block).

        Why this un-serializes the sink: the barrier form's priority
        writes touch every shard from the gather thread, so they could
        interleave with in-flight sibling blocks and the old stream
        path had to drain the whole pipeline around each one.  Split
        per shard and submitted *after* the same block's serve jobs
        (one dispatcher thread, per-shard FIFO workers), each shard
        executes «serve block k → apply block k's bits → serve block
        k+1» in exactly the serial order, and shards share no keys —
        the same structural argument that makes the concurrent engine
        bit-identical to the serial one extends to the sink, so up to
        :attr:`_MAX_INFLIGHT_BLOCKS` blocks stay in flight straight
        through an active provider.

        Provider calls (observe, the async table gather or sync
        inference) run here on the dispatcher thread at submit time —
        they depend only on the keys and the provider's own state,
        never on buffer state, so computing bits before the block is
        gathered changes no decision; only the *applies* must order
        with serving, and per-shard FIFO orders them.
        """
        got = self._provider_bits(segment, guided)
        if got is None:
            return []
        keys, bits = got
        pool = self._ensure_pool()
        speed = self.config.eviction_speed
        return [
            pool.submit(index, apply_caching_bits, shard, sub,
                        bits[positions], speed)
            for index, shard, positions, sub
            in self.buffer.iter_shard_segments(keys)
        ]

    def _hits_total(self) -> int:
        """Served hits so far (demand + prefetch) — the lift guard's
        measurement counter."""
        return self.breakdown.cache_hits + self.breakdown.prefetch_hits

    def _guard_begin(self) -> bool:
        """Decide the next block's lift-guard arm (True = guided;
        always True without a guard)."""
        guard = self.lift_guard
        return True if guard is None else guard.begin_block()

    def _guard_record(self, accesses: int, hits_before: int) -> None:
        """Feed one gathered block's measured hits to the lift guard
        (no-op without one); ``hits_before`` is :meth:`_hits_total`
        sampled before the block's accounting ran."""
        guard = self.lift_guard
        if guard is not None:
            guard.record_block(self._hits_total() - hits_before,
                               accesses)

    def _apply_prefetches(self, predicted: np.ndarray) -> None:
        """Algorithm 1 lines 9-15: fetch P[i] at priority eviction_speed.

        Keys already resident are filtered out *before* the
        ``max_prefetch_per_chunk`` budget is applied, so the budget
        counts actual fills — slicing the raw predictions first would
        let resident keys consume budget and issue fewer real prefetches
        than the configuration allows.
        """
        speed = self.config.eviction_speed
        budget = self.config.max_prefetch_per_chunk
        issued = 0
        for key in predicted:
            if issued >= budget:
                break
            key = int(key)
            if key in self.buffer:
                continue
            issued += 1
            self.prefetches_issued += 1
            self._evict_for_space(key)
            self.buffer.insert(key, speed)
            self._prefetched.add(key)

    # ------------------------------------------------------------------
    def _serve_demand_slow(self, segment: np.ndarray) -> None:
        """Per-access reference serving loop (audit path)."""
        keys = (segment.tolist() if isinstance(segment, np.ndarray)
                else list(segment))
        record = self._record_hits
        if record is None:
            for key in keys:
                self._demand_access(key)
        else:
            buffer = self.buffer  # __contains__ is live on every backend
            for key in keys:
                record.append(key in buffer)
                self._demand_access(key)

    def _serve_demand_fast(self, segment: np.ndarray) -> None:
        """Bulk demand-serving pre-pass: resolve runs of guaranteed
        hits/misses in bulk, falling back to :meth:`_demand_access` only
        where an eviction decision is actually needed.

        One residency snapshot classifies the whole segment up front.
        Two regimes, both producing state and counters identical to the
        scalar loop:

        * the segment fits without any eviction (warm-up, or an all-hit
          segment once the buffer is full) → misses *and* hits resolve
          in bulk: one counter update plus a single
          :meth:`FastPriorityBuffer.put_batch` over the segment;
        * otherwise the snapshot-miss positions run through the scalar
          path (each needs a live eviction decision) while the hit runs
          between them are bulk-applied.  Hits never change membership,
          so a snapshot True can only go stale through an eviction; the
          victims seen so far are tracked and any run touching one falls
          back to the scalar loop.
        """
        keys = segment.tolist() if isinstance(segment, np.ndarray) else segment
        length = len(keys)
        if length == 0:
            return
        buffer = self.buffer
        capacity = self.capacity
        speed = self.config.eviction_speed
        breakdown = self.breakdown
        prefetched = self._prefetched
        # Segments are at most _SERVE_BLOCK (or one model chunk) long
        # and the classification is dict lookups, so plain comprehensions
        # beat array round-trips here; the bulk win is in the batched
        # accounting, the per-unique-key stores, and the inlined
        # miss/eviction path — not in numpy.
        entries = buffer._entries
        store = buffer._store
        evict_one = buffer.evict_one
        miss_idx = [i for i, key in enumerate(keys) if key not in entries]

        new_keys = {keys[m] for m in miss_idx}
        if len(entries) + len(new_keys) <= capacity:
            self._finish_eviction_free(keys, miss_idx, new_keys)
            return

        record = self._record_hits
        cache_hits = 0
        on_demand = 0
        victims: Set[int] = set()
        position = 0
        for miss in miss_idx + [length]:
            if miss > position:
                run = keys[position:miss]
                if victims and not victims.isdisjoint(run):
                    # An eviction invalidated part of this run's
                    # snapshot; replay it through the scalar path (whose
                    # own evictions must be tracked too).
                    for key in run:
                        if record is not None:
                            record.append(key in entries)
                        victim = self._demand_access(key)
                        if victim is not None:
                            victims.add(victim)
                else:
                    # Bulk hit-run: one store per unique key at its
                    # last-occurrence seqno via put_batch (every key is
                    # resident, so its capacity check always passes).
                    hit_count = miss - position
                    if prefetched:
                        pf_hits = prefetched.intersection(run)
                        if pf_hits:
                            prefetched.difference_update(pf_hits)
                            breakdown.prefetch_hits += len(pf_hits)
                            self.prefetches_useful += len(pf_hits)
                            hit_count -= len(pf_hits)
                    cache_hits += hit_count
                    if record is not None:
                        record.extend([True] * len(run))
                    buffer.put_batch(run, speed)
            if miss < length:
                # Inlined _demand_access for the snapshot-miss position
                # (it may have turned into a hit via an earlier insert).
                key = keys[miss]
                if record is not None:
                    record.append(key in entries)
                if key in entries:
                    if key in prefetched:
                        prefetched.discard(key)
                        breakdown.prefetch_hits += 1
                        self.prefetches_useful += 1
                    else:
                        cache_hits += 1
                    buffer.set_priority(key, speed)
                else:
                    on_demand += 1
                    if len(entries) >= capacity:
                        victim = evict_one()
                        prefetched.discard(victim)
                        self.evictions += 1
                        victims.add(victim)
                    store(key, speed, buffer._next_seq)
                    buffer._next_seq += 1
            position = miss + 1
        breakdown.cache_hits += cache_hits
        breakdown.on_demand += on_demand

    def _finish_eviction_free(self, keys: List[int], miss_idx: List[int],
                              new_keys: Set[int]) -> None:
        """Resolve a whole segment known to fit without any eviction.

        The first touch of each non-resident key is the segment's only
        miss for that key, everything else hits.  Prefetched keys are
        always resident (the tag is dropped on eviction), so each one
        present here scores exactly one prefetch hit.  ``miss_idx`` are
        the positions whose key is in ``new_keys`` (the non-resident
        set) under the current residency snapshot.
        """
        buffer = self.buffer
        speed = self.config.eviction_speed
        breakdown = self.breakdown
        prefetched = self._prefetched
        record = self._record_hits
        length = len(keys)
        if record is not None:
            segment_hits = [True] * length
            seen: Set[int] = set()
            for m in miss_idx:
                key = keys[m]
                if key not in seen:
                    seen.add(key)
                    segment_hits[m] = False
            record.extend(segment_hits)
        hit_count = length - len(new_keys)
        if prefetched:
            pf_hits = prefetched.intersection(keys)
            prefetched.difference_update(pf_hits)
            breakdown.prefetch_hits += len(pf_hits)
            self.prefetches_useful += len(pf_hits)
            hit_count -= len(pf_hits)
        breakdown.cache_hits += hit_count
        breakdown.on_demand += len(new_keys)
        buffer.put_batch(keys, speed)

    def _serve_demand_batched(self, segment: np.ndarray) -> None:
        """Batched-reclaim serving for approximate (clock) backends.

        Instead of deciding one eviction per miss, the whole segment is
        made eviction-free up front: one *protected*
        :meth:`~repro.cache.buffer.ClockBuffer.evict_batch` call
        (``avoid=uniq``) reclaims exactly the space the segment's
        non-resident keys need, then every access resolves through the
        bulk eviction-free path.  Protection means a reclaim victim is
        never a segment key — the clock hand skips over them — so the
        residency snapshot stays valid (no victim/segment collision
        re-classification loop) and no key is evicted moments before
        its own refresh; the same scheme the sharded clock sub-engine
        (:meth:`_serve_subsegment`) uses, and it is why the clock hit
        rate sits *above* the exact backends on looping workloads.
        Reclaim is possible at all only when the segment's distinct
        keys fit in the buffer (checked below).

        Everything is array-native: residency classifies through
        ``contains_batch`` (a single bitmap gather on the dense clock
        backend), distinct-new counting and first-touch miss positions
        come from ``np.unique``, and the final state lands with one
        vectorized ``put_batch`` — no per-key dict loop anywhere.
        """
        segment = np.asarray(segment, dtype=np.int64)
        length = segment.size
        if length == 0:
            return
        buffer = self.buffer
        capacity = self.capacity
        prefetched = self._prefetched
        speed = self.config.eviction_speed
        resident = buffer.contains_batch(segment)
        if resident.all():
            # Pure hit-run: membership cannot change, skip the
            # distinct-key analysis and reclaim loop entirely.
            uniq = np.unique(segment) if prefetched else segment
            self._account_segment(segment, np.zeros(0, dtype=np.intp), uniq)
            buffer.put_batch(segment, speed)
            return
        # One unique pass yields the distinct keys *and* each one's
        # first-occurrence position, so per-key residency is a take
        # from the segment gather — no second contains_batch.
        uniq, first_idx = np.unique(segment, return_index=True)
        if uniq.size > capacity:
            # Degenerate (segment wider than the whole buffer): cannot
            # be made eviction-free; serve through the scalar path.
            self._serve_demand_slow(segment)
            return
        def on_victims(victims):
            self.evictions += len(victims)
            if prefetched:
                prefetched.difference_update(victims)

        # Protected reclaim: victims never collide with the segment,
        # so the residency snapshot taken above stays valid.
        reclaim_batch_space(
            buffer, uniq, int(np.count_nonzero(~resident[first_idx])),
            on_victims=on_victims, protect=True)
        # Distinct new keys miss exactly once, at their first
        # occurrence (every occurrence of a non-resident key is a
        # snapshot miss, so the first one is the demand fetch).
        first_miss_pos = first_idx[~resident[first_idx]]
        self._account_segment(segment, first_miss_pos, uniq)
        buffer.put_batch(segment, speed)

    def _serve_demand_batched_exact(self, segment: np.ndarray) -> None:
        """Batched *exact* serving for the dense ``"fast"`` backend —
        decision-for-decision and state-identical to the scalar loop.

        :meth:`~repro.cache.buffer.FastPriorityBuffer.serve_segment`
        resolves a maximal segment prefix with one residency gather,
        one vectorized victim-sequence selection and one bulk store,
        trimming exactly where bulk reclaim would stop matching the
        interleaved scalar order (a reclaim victim touched by the
        segment, a positive-priority victim, a segment wider than the
        buffer).  Serving a segment equals serving its pieces in
        sequence, so the engine just loops over the served prefixes; a
        zero-length serve (not even the first access is bulk-servable)
        advances through a short scalar slice instead.
        """
        segment = np.asarray(segment, dtype=np.int64)
        prefetched = self._prefetched
        for chunk in iter_serve_segments(self.buffer, segment,
                                         self.config.eviction_speed,
                                         self._SCALAR_FALLBACK):
            if chunk[0] == "scalar":
                _, start, span = chunk
                self._serve_demand_slow(segment[start:start + span])
                continue
            _, start, served, first_miss_pos, victims, uniq = chunk
            if victims:
                self.evictions += len(victims)
                if prefetched:
                    prefetched.difference_update(victims)
            self._account_segment(segment[start:start + served],
                                  first_miss_pos, uniq)

    def _serve_demand_sharded(self, segment: np.ndarray) -> None:
        """Shard-wise serving for :class:`ShardedBuffer` backends.

        One vectorized route scatters the whole demand segment to its
        shards; each shard then serves its sub-segment through the same
        per-backend scheme the single-shard engines use — the
        batched-reclaim path for approximate (clock) shards, the
        ``serve_segment`` bulk-exact path for dense ``"fast"`` shards,
        the scalar audit loop otherwise — and the per-shard miss
        positions gather back into one segment-order accounting pass.
        Shards hold disjoint key sets and never touch each other's
        slots, so serving the sub-segments in shard order is exactly
        serving N independent buffers: for exact shards the engine is
        decision-for-decision identical to the scalar audit loop over
        the sharded buffer (fuzz-checked in ``tests/test_sharding.py``).
        """
        segment = np.asarray(segment, dtype=np.int64)
        if segment.size == 0:
            return
        buffer = self.buffer
        miss_chunks: List[np.ndarray] = []
        pf_hits = 0
        evicted = 0
        counts = (np.zeros(buffer.num_shards, dtype=np.float64)
                  if self.rebalance_interval else None)
        for index, shard, positions, sub in buffer.iter_shard_segments(
                segment):
            sub_miss, sub_pf, sub_ev = self._serve_subsegment(shard, sub)
            pf_hits += sub_pf
            evicted += sub_ev
            if sub_miss.size:
                miss_chunks.append(positions[sub_miss])
            if counts is not None:
                counts[index] += positions.size
        if counts is not None:
            self._note_traffic(counts, int(segment.size))
        self.evictions += evicted
        first_miss_pos = (np.concatenate(miss_chunks) if miss_chunks
                          else np.zeros(0, dtype=np.int64))
        self._account_segment(segment, first_miss_pos, segment,
                              pf_hits=pf_hits)

    def _submit_block(self, segment: np.ndarray) -> List[Tuple]:
        """Route ``segment`` and dispatch one :meth:`_serve_subsegment`
        job per touched shard to the worker pool; returns the
        ``(positions, future)`` jobs **in shard order** — the order the
        gather must consume them to reproduce the serial engine.

        The online rebalancer's traffic EWMA is noted here, on the
        dispatcher thread in block order — the same per-shard counts
        the serial gather sees at the same block boundary — so the
        rebalance trigger fires at identical block indices under
        ``concurrency="serial"`` and ``"threads"`` regardless of how
        far the pipeline has gathered."""
        pool = self._ensure_pool()
        jobs = []
        counts = (np.zeros(self.buffer.num_shards, dtype=np.float64)
                  if self.rebalance_interval else None)
        for index, shard, positions, sub in \
                self.buffer.iter_shard_segments(segment):
            jobs.append((positions,
                         pool.submit(index, self._serve_subsegment,
                                     shard, sub)))
            if counts is not None:
                counts[index] += positions.size
        if counts is not None:
            self._note_traffic(counts, int(segment.size))
        return jobs

    def _gather_block(self, segment: np.ndarray, jobs: List[Tuple]) -> None:
        """Join a dispatched block's shard jobs in shard order and run
        the segment-order accounting pass — the single point where
        worker results touch the shared counters (so the workers never
        race on them)."""
        miss_chunks: List[np.ndarray] = []
        pf_hits = 0
        evicted = 0
        for positions, future in jobs:
            sub_miss, sub_pf, sub_ev = future.result()
            pf_hits += sub_pf
            evicted += sub_ev
            if sub_miss.size:
                miss_chunks.append(positions[sub_miss])
        self.evictions += evicted
        first_miss_pos = (np.concatenate(miss_chunks) if miss_chunks
                          else np.zeros(0, dtype=np.int64))
        self._account_segment(segment, first_miss_pos, segment,
                              pf_hits=pf_hits)

    def _note_traffic(self, counts: np.ndarray, accesses: int) -> None:
        """Fold one served block's per-shard access counts into the
        traffic EWMA and advance the rebalance-cadence counter.  Called
        once per block, from the serial gather
        (:meth:`_serve_demand_sharded`) or the concurrent dispatcher
        (:meth:`_submit_block`) — both in block order, so the EWMA
        state at any block boundary is identical across engines."""
        traffic = self._shard_traffic
        traffic *= 1.0 - self._REBALANCE_EWMA
        traffic += self._REBALANCE_EWMA * counts
        self._accesses_since_rebalance += accesses

    def _maybe_rebalance(self, drain=None) -> None:
        """The online rebalance driver — called at block boundaries by
        :meth:`run`, :meth:`_serve_stream` and :meth:`serve_batch`.

        Every :attr:`rebalance_interval` served accesses, compare the
        traffic-EWMA shares against the current capacity split; when
        the worst shard's absolute imbalance exceeds
        :attr:`rebalance_threshold`, rebalance the buffer onto the
        traffic weights.  The migration is a **barrier job**: ``drain``
        (the pipelined stream's gather-everything hook) runs first,
        then :meth:`ShardWorkerPool.barrier` joins every in-flight
        per-shard job, and only then does the migration run on the
        calling (dispatcher) thread — shard exclusivity is never
        violated mid-flight.  Donor-shrink victims count as manager
        evictions (their prefetch tags drop, same as any eviction);
        migrated keys and the full pause (drain + barrier + migration)
        land in :attr:`serving_metrics` via ``record_rebalance``.
        """
        interval = self.rebalance_interval
        if not interval or self._accesses_since_rebalance < interval:
            return
        self._accesses_since_rebalance = 0
        traffic = self._shard_traffic
        total = float(traffic.sum())
        if total <= 0.0:
            return
        shares = traffic / total
        caps = np.asarray(self.buffer.shard_capacities, dtype=np.float64)
        if float(np.abs(shares - caps / caps.sum()).max()) \
                <= self.rebalance_threshold:
            return
        begin = time.perf_counter()
        if drain is not None:
            drain()
        if self._pool is not None and not self._pool.closed:
            self._pool.barrier()
        # Floor the weights: a shard whose EWMA decayed to ~0 still
        # needs a positive weight (split_capacity guarantees it one
        # slot either way).
        stats = self.buffer.rebalance(
            tuple(float(w) for w in np.maximum(shares, 1e-9)))
        if stats["changed"]:
            victims = stats["evicted"]
            self.evictions += len(victims)
            if self._prefetched:
                self._prefetched.difference_update(victims)
            self.serving_metrics.record_rebalance(
                stats["migrated_keys"], time.perf_counter() - begin)

    def _serve_demand_concurrent(self, segment: np.ndarray) -> None:
        """Concurrent shard-wise serving (``concurrency="threads"``).

        Same route → serve → gather shape as
        :meth:`_serve_demand_sharded`, with the per-shard sub-segments
        dispatched to the persistent :class:`ShardWorkerPool` instead
        of served inline.  Decision identity with the serial loop is
        structural, not probabilistic: shards hold disjoint key sets,
        every shard is pinned to exactly one single-thread worker (so a
        shard's sub-segments execute FIFO in submission order), and the
        gather consumes futures in shard order — the exact iteration
        order of the serial engine.  Worker results are pure values
        (miss positions, prefetch hits, eviction count); all shared
        counters are written by the gather on the calling thread.

        This is the per-segment *barrier* form — it blocks until the
        whole segment is gathered, which model-boundary chunks require
        (a chunk's caching bits/prefetches must land before the next
        chunk is served).  The no-model streaming path pipelines blocks
        through :meth:`_serve_stream` instead.
        """
        segment = np.asarray(segment, dtype=np.int64)
        if segment.size == 0:
            return
        self._gather_block(segment, self._submit_block(segment))

    def _serve_stream(self, dense: np.ndarray, start: int,
                      block: int, sink: bool = False) -> None:
        """Pipelined concurrent serving of the stream tail: keep up to
        :attr:`_MAX_INFLIGHT_BLOCKS` blocks dispatched ahead of the
        gather, so shard workers never idle at a block boundary
        waiting for the slowest sibling.  Per-shard FIFO (all
        ``_submit_block`` calls happen on this thread, in block order)
        means each shard still serves its sub-segments in exactly the
        serial order, and the gathers run in block order here — so
        counters, decision streams and buffer state stay bit-identical
        to the serial engine.

        ``sink=True`` (an active priority provider) threads the
        per-shard provider sink through the same pipeline: each
        block's bits are computed on this thread right after its serve
        jobs are submitted and applied as per-shard jobs on the pinned
        workers (:meth:`_submit_sink`), so priority writes ride the
        per-shard FIFO instead of forcing a per-block barrier — the
        pipeline keeps its depth under ``priority_mode="sync"|"async"``
        and decisions stay bit-identical to the barrier form (pinned
        by ``tests/test_sink_pipelining.py``).  The drain joins a
        block's apply futures after its gather (they are queued behind
        the same block's serve jobs, so this adds no stall) — apply
        errors propagate and the buffer state is complete when the
        stream returns.

        Each gathered block records its wall latency (dispatch →
        gathered) and the in-flight pipeline depth into
        :attr:`serving_metrics` — as ``inflight_depth``, a distinct
        stat from the admission-queue ``queue_depth`` that
        :meth:`serve_batch` records (blocks dispatched ahead of the
        gather vs requests waiting for admission; same name would mix
        units)."""
        pending: Deque[Tuple[np.ndarray, List[Tuple], List, float]] = \
            deque()
        metrics = self.serving_metrics

        def drain_one() -> None:
            segment, jobs, sink_jobs, submitted_at = pending.popleft()
            hits_before = self._hits_total()
            self._gather_block(segment, jobs)
            self._guard_record(int(segment.size), hits_before)
            for future in sink_jobs:
                future.result()
            metrics.record_batch(int(segment.size),
                                 time.perf_counter() - submitted_at,
                                 inflight_depth=len(pending))

        def drain_all() -> None:
            while pending:
                drain_one()

        for lo in range(start, len(dense), block):
            segment = np.asarray(dense[lo:lo + block], dtype=np.int64)
            jobs = self._submit_block(segment)
            sink_jobs = (self._submit_sink(segment, self._guard_begin())
                         if sink else [])
            pending.append((segment, jobs, sink_jobs,
                            time.perf_counter()))
            # Rebalance check at the same block boundary the serial
            # tail checks (the EWMA was noted by _submit_block just
            # above).  On trigger, every dispatched block — including
            # this one — is gathered and its sink applied before the
            # migration starts (drain_all + the worker barrier inside).
            self._maybe_rebalance(drain=drain_all)
            if len(pending) >= self._MAX_INFLIGHT_BLOCKS:
                drain_one()
        drain_all()

    def serve_batch(self, keys: np.ndarray,
                    queue_depth: Optional[int] = None) -> np.ndarray:
        """Serve one coalesced demand segment — the front door the
        admission queue/batcher stack (:mod:`repro.serving.admission`)
        drives, and what an RPC handler would call per batch.

        Dispatches through the same engine selection as :meth:`run`
        (concurrent when ``concurrency="threads"``), records the
        batch's wall latency, size and ``queue_depth`` (the admission
        queue's depth when the batch formed, if the caller tracks one)
        into :attr:`serving_metrics`, and returns the per-access hit
        booleans (``True`` = served from the buffer, demand or
        prefetched; ``False`` = on-demand fetch) in access order.
        """
        keys = np.asarray(keys, dtype=np.int64)
        serve = self._select_engine()
        outer = self._record_hits
        self._record_hits = []
        begin = time.perf_counter()
        try:
            if self._provider_active:
                guided = self._guard_begin()
                hits_before = self._hits_total()
                serve(keys)
                self._guard_record(int(keys.size), hits_before)
                # Provider sink inside the timed section on purpose:
                # sync inference is on the serving critical path and
                # must show in the latency percentiles; the async
                # gather is a cheap table read and the recorded p99
                # proves it.
                self._sink_provider(keys, guided)
            else:
                serve(keys)
            hits = np.asarray(self._record_hits, dtype=bool)
        finally:
            self._record_hits = outer
        self.serving_metrics.record_batch(
            int(keys.size), time.perf_counter() - begin,
            queue_depth=queue_depth)
        # Rebalance after the batch's latency is recorded: the pause
        # is accounted separately (rebalance_pause_ms) so a migration
        # between batches does not distort the serving percentiles.
        self._maybe_rebalance()
        return hits

    def _consume_prefetch_tags(self, keys) -> int:
        """Consume the prefetch tags of the (resident) ``keys`` just
        served; returns how many scored a prefetch hit.  Called per
        served chunk — *before* any later chunk's eviction can drop a
        tag whose key already hit — so the sharded engine counts the
        same prefetch hits the per-chunk single-shard engines do."""
        prefetched = self._prefetched
        if not prefetched:
            return 0
        hits = prefetched.intersection(
            keys.tolist() if isinstance(keys, np.ndarray) else keys)
        if hits:
            prefetched.difference_update(hits)
        return len(hits)

    def _serve_subsegment(self, shard,
                          sub: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Serve ``sub`` (all keys route to ``shard``) on one backend
        shard; returns the positions (relative to ``sub``) of its
        demand misses, the number of prefetch hits it consumed, and
        the number of entries it evicted.  Mirrors the single-shard
        engines minus the shared-counter writes, which the gather
        (:meth:`_serve_demand_sharded` / :meth:`_gather_block`) runs
        once for the whole segment — evictions in particular are
        *returned*, not added to :attr:`evictions` here, because under
        ``concurrency="threads"`` this method runs on worker threads
        and ``+=`` on a shared int is a lost-update race.  Prefetch-tag
        bookkeeping does land on :attr:`_prefetched` as it happens (a
        tag is consumed in the chunk where its key is first served,
        dropped when its key is evicted — in that order, chunk by
        chunk): every key and victim this shard touches routes only to
        this shard, so concurrent workers mutate disjoint tag subsets,
        and each individual set op is atomic under the GIL."""
        speed = self.config.eviction_speed
        prefetched = self._prefetched
        evicted = 0

        def on_victims(victims):
            nonlocal evicted
            evicted += len(victims)
            if prefetched:
                prefetched.difference_update(victims)

        if getattr(shard, "approximate", False):
            misses: List[np.ndarray] = []
            pf_hits = 0
            start = 0
            total = int(sub.size)
            while start < total:
                rest = sub[start:]
                resident = shard.contains_batch(rest)
                if resident.all():
                    shard.put_batch(rest, speed)
                    if prefetched:
                        pf_hits += self._consume_prefetch_tags(
                            np.unique(rest))
                    break
                uniq, first_idx = np.unique(rest, return_index=True)
                if uniq.size > shard.capacity:
                    # Wider than the shard (per-shard capacity is a
                    # fraction of the total): trim to the longest
                    # prefix whose distinct keys fit, serve it through
                    # the same batched-reclaim scheme, and continue
                    # with the remainder — no per-key scalar loop.
                    first_mask = np.zeros(rest.size, dtype=bool)
                    first_mask[first_idx] = True
                    cut = int(np.searchsorted(np.cumsum(first_mask),
                                              shard.capacity, side="right"))
                    rest = rest[:cut]
                    resident = resident[:cut]
                    keep = first_idx < cut
                    uniq = uniq[keep]
                    first_idx = first_idx[keep]
                else:
                    cut = int(rest.size)
                # Protected reclaim (avoid=uniq): one evict_batch call,
                # no victim/segment collision loop, and no segment key
                # is evicted right before its own refresh.
                reclaim_batch_space(
                    shard, uniq,
                    int(np.count_nonzero(~resident[first_idx])),
                    on_victims=on_victims, protect=True)
                shard.put_batch(rest, speed)
                # Reclaim victims (never chunk keys — they are
                # protected) dropped their tags above; every tagged
                # chunk key was resident, so it hit.
                pf_hits += self._consume_prefetch_tags(uniq)
                prefix_miss = first_idx[~resident[first_idx]]
                if prefix_miss.size:
                    misses.append(start + prefix_miss)
                start += cut
            return ((np.concatenate(misses) if misses
                     else np.zeros(0, dtype=np.int64)), pf_hits, evicted)
        if (getattr(shard, "residency", None) is not None
                and hasattr(shard, "serve_segment")):
            misses: List[np.ndarray] = []
            pf_hits = 0
            for chunk in iter_serve_segments(shard, sub, speed,
                                             self._SCALAR_FALLBACK):
                if chunk[0] == "scalar":
                    _, start, span = chunk
                    scalar_miss, scalar_pf, scalar_ev = self._scalar_subserve(
                        shard, sub[start:start + span])
                    pf_hits += scalar_pf
                    evicted += scalar_ev
                    if scalar_miss.size:
                        misses.append(start + scalar_miss)
                else:
                    _, start, _, first_miss, victims, uniq = chunk
                    if victims:
                        on_victims(victims)
                    # A victim's in-prefix touch would have trimmed the
                    # prefix before it, so victims never overlap uniq:
                    # every tagged prefix key was resident and hit.
                    pf_hits += self._consume_prefetch_tags(uniq)
                    if len(first_miss):
                        misses.append(start + first_miss)
            return ((np.concatenate(misses) if misses
                     else np.zeros(0, dtype=np.int64)), pf_hits, evicted)
        return self._scalar_subserve(shard, sub)

    def _scalar_subserve(self, shard,
                         sub: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Scalar serving loop against one shard backend; returns the
        relative miss positions, consumed prefetch-hit count and
        eviction count (the shared-counter updates are the gather's
        job — see :meth:`_serve_subsegment` on why; tag drops land on
        the shared set as they happen)."""
        speed = self.config.eviction_speed
        prefetched = self._prefetched
        misses: List[int] = []
        pf_hits = 0
        evicted = 0
        for position, key in enumerate(sub.tolist()):
            if key in shard:
                if key in prefetched:
                    prefetched.discard(key)
                    pf_hits += 1
                shard.set_priority(key, speed)
                continue
            misses.append(position)
            if shard.is_full:
                victim = shard.evict_one()
                prefetched.discard(victim)
                evicted += 1
            shard.insert(key, speed)
        return np.asarray(misses, dtype=np.int64), pf_hits, evicted

    def _account_segment(self, segment: np.ndarray,
                         first_miss_pos: np.ndarray,
                         uniq: np.ndarray,
                         pf_hits: Optional[int] = None) -> None:
        """Counters and decision recording for a bulk-served segment
        (the batched engines' epilogue; the store is the caller's job).

        ``first_miss_pos`` holds the position of each distinct new
        key's first occurrence (its only miss; later occurrences hit);
        ``uniq`` holds the segment's distinct keys and is consulted
        only while prefetch tags exist.  Prefetched keys are always
        resident (the tag is dropped on eviction), so each one present
        scores exactly one prefetch hit.  The sharded engine consumes
        tags chunk by chunk instead (a later chunk's eviction may drop
        a tag whose key already hit) and passes the consumed count as
        ``pf_hits``; ``uniq`` is then ignored.
        """
        length = segment.size
        new_count = int(first_miss_pos.size)
        breakdown = self.breakdown
        record = self._record_hits
        if record is not None:
            segment_hits = np.ones(length, dtype=bool)
            segment_hits[first_miss_pos] = False
            record.extend(segment_hits.tolist())
        if pf_hits is None:
            pf_hits = self._consume_prefetch_tags(uniq)
        hit_count = length - new_count - pf_hits
        if pf_hits:
            breakdown.prefetch_hits += pf_hits
            self.prefetches_useful += pf_hits
        breakdown.cache_hits += hit_count
        breakdown.on_demand += new_count

    # ------------------------------------------------------------------
    def _select_engine(self, fast_serve: bool = True):
        """The bulk demand-serving engine for the configured backend —
        one dispatch shared by :meth:`run` and :meth:`serve_batch` (the
        engine semantics are documented on :meth:`run`)."""
        if not fast_serve:
            return self._serve_demand_slow
        if isinstance(self.buffer, ShardedBuffer):
            # Shard-wise engine: route whole segments, serve per shard
            # through the matching single-shard scheme (exact shards
            # stay decision-identical to the scalar audit loop).  The
            # concurrent engine dispatches the same per-shard serves to
            # the worker pool and is bit-identical to the serial loop.
            if self.concurrency == "threads":
                return self._serve_demand_concurrent
            return self._serve_demand_sharded
        if getattr(self.buffer, "approximate", False):
            return self._serve_demand_batched
        if isinstance(self.buffer, FastPriorityBuffer):
            # Dense (key_space) mode serves through the bulk exact
            # engine; dict mode through the lazy-heap pre-pass.  Both
            # are decision-identical to the scalar audit loop.
            return (self._serve_demand_batched_exact
                    if self.buffer.residency is not None
                    else self._serve_demand_fast)
        # Exact audit backend ("reference").
        return self._serve_demand_slow

    def run(self, trace: Trace, inference_batch: int = 64,
            fast_serve: bool = True,
            record_decisions: bool = False) -> ManagerStats:
        """Serve ``trace`` end to end; returns the access breakdown.

        Model inference is batched across chunks up front — the result
        is identical to per-chunk inference (the models are stateless
        across chunks) but an order of magnitude faster, mirroring the
        paper's batched CPU serving.  ``fast_serve`` selects the bulk
        demand-serving engine for the backend: the batched exact engine
        (:meth:`_serve_demand_batched_exact`, dense mode) or the
        lazy-heap pre-pass (:meth:`_serve_demand_fast`, dict mode) for
        the exact ``"fast"`` buffer — both bit-identical to the
        per-access audit loop — or the batched-reclaim engine
        (:meth:`_serve_demand_batched`) for the approximate ``"clock"``
        buffer, whose victim order (and hence hit stream) legitimately
        differs from the scalar loop.  The ``"reference"`` backend
        always runs the audit loop.  Sharded buffers route shard-wise
        (:meth:`_serve_demand_sharded`), and ``concurrency="threads"``
        swaps in the bit-identical concurrent engine
        (:meth:`_serve_demand_concurrent`) — pipelined across blocks
        via :meth:`_serve_stream` once the model chunks are done.
        ``record_decisions`` additionally stores the per-access hit
        booleans in :attr:`last_decisions` (every engine records).
        """
        from .features import EncodedChunks

        self.last_decisions = None
        self._record_hits = [] if record_decisions else None

        config = self.config
        dense = self.encoder.dense_ids(trace)
        tables = self.encoder.table_indices(trace)
        hashed = dense % config.hash_buckets
        norm = self.encoder.normalize(dense)
        freq = self.encoder.freq_values(dense)
        length = config.input_len
        n = len(dense)
        num_chunks = n // length

        # With a priority provider installed the caching model runs
        # through the provider seam (per served block, possibly async)
        # instead of the offline chunk pass — computing bits_all too
        # would double-apply the bits.  The prefetch model keeps its
        # offline pass either way.
        use_provider = self._provider_active
        bits_all = None
        preds_all = None
        if num_chunks and ((self.caching_model is not None
                            and not use_provider)
                           or self.prefetch_model is not None):
            starts = np.arange(num_chunks) * length
            idx = starts[:, None] + np.arange(length)[None, :]
            chunks = EncodedChunks(
                table_ids=tables[idx], hashed_rows=hashed[idx],
                norm_index=norm[idx], freq=freq[idx],
                dense_ids=dense[idx], starts=starts,
            )
            if self.caching_model is not None and not use_provider:
                parts = [self.caching_model.predict(
                            chunks, sel=np.arange(lo, min(lo + inference_batch,
                                                          num_chunks)))
                         for lo in range(0, num_chunks, inference_batch)]
                bits_all = np.concatenate(parts, axis=0)
            if self.prefetch_model is not None:
                parts = [self.prefetch_model.predict_indices(
                            chunks, self.encoder,
                            sel=np.arange(lo, min(lo + inference_batch,
                                                  num_chunks)))
                         for lo in range(0, num_chunks, inference_batch)]
                preds_all = np.concatenate(parts, axis=0)

        serve = self._select_engine(fast_serve)
        if bits_all is None and preds_all is None:
            # No per-chunk model barrier (model-free, or the caching
            # model rides the provider seam at block granularity), so
            # chunk boundaries are irrelevant: serve the whole trace in
            # large blocks to amortize the bulk pass's per-segment
            # setup — sinking each block when a provider is active.
            tail = 0
        else:
            for chunk_idx in range(num_chunks):
                start = chunk_idx * length
                if use_provider:
                    guided = self._guard_begin()
                    hits_before = self._hits_total()
                    serve(dense[start:start + length])
                    self._guard_record(length, hits_before)
                    self._sink_provider(dense[start:start + length],
                                        guided)
                else:
                    serve(dense[start:start + length])
                    if bits_all is not None:
                        self._apply_caching_bits(
                            dense[start:start + length],
                            bits_all[chunk_idx])
                if preds_all is not None:
                    self._apply_prefetches(preds_all[chunk_idx])
                # Chunk boundaries are block boundaries too: the chunk
                # engines are barriers (concurrent serves gather fully,
                # sinks run inline), so a triggered migration overlaps
                # nothing.
                self._maybe_rebalance()
            tail = num_chunks * length
        # Sharded serving splits every block N ways, so scale the block
        # to keep the per-shard sub-segments at single-shard size (the
        # scatter itself is one vectorized route).
        block = self._SERVE_BLOCK * getattr(self.buffer, "num_shards", 1)
        if serve == self._serve_demand_concurrent and (
                not use_provider or self._pipeline_sink):
            # No model barriers past ``tail``: pipeline the blocks so
            # shard workers stay busy across block boundaries.  An
            # active provider rides along — its sink is split per
            # shard onto the pinned workers (:meth:`_submit_sink`), so
            # priority writes no longer force a per-block barrier.
            self._serve_stream(dense, tail, block, sink=use_provider)
        else:
            # Serial engines, or the pipelined sink explicitly
            # disabled (``_pipeline_sink=False`` — the differential/
            # bench escape hatch): each block is a barrier — serve,
            # then sink inline (per shard on a sharded buffer).  Async
            # mode still keeps *inference* off this path — the sink's
            # table gather and per-shard priority scatters are cheap
            # bulk ops.
            for start in range(tail, n, block):
                segment = dense[start:start + block]
                if use_provider:
                    guided = self._guard_begin()
                    hits_before = self._hits_total()
                    serve(segment)
                    self._guard_record(len(segment), hits_before)
                    self._sink_provider(segment, guided)
                else:
                    serve(segment)
                self._maybe_rebalance()
        if record_decisions:
            self.last_decisions = np.asarray(self._record_hits, dtype=bool)
            self._record_hits = None
        return ManagerStats(
            breakdown=self.breakdown,
            prefetches_issued=self.prefetches_issued,
            prefetches_useful=self.prefetches_useful,
            evictions=self.evictions,
        )


class ModelPrefetcher(Prefetcher):
    """Adapts the RecMG prefetch model to the :class:`Prefetcher`
    interface over *dense* keys (for LRU+PF and PM+LRU baselines)."""

    name = "PM"

    def __init__(self, model: PrefetchModel, encoder: FeatureEncoder,
                 config: RecMGConfig) -> None:
        self.model = model
        self.encoder = encoder
        self.config = config
        self._tables: Deque[int] = deque(maxlen=config.input_len)
        self._dense: Deque[int] = deque(maxlen=config.input_len)
        self._step = 0

    def reset(self) -> None:
        self._tables.clear()
        self._dense.clear()
        self._step = 0

    def observe(self, key: int, pc: int = 0, hit: bool = True) -> List[int]:
        config = self.config
        num_tables = max(1, self.encoder.num_tables)
        self._tables.append(pc % num_tables)
        self._dense.append(key)
        self._step += 1
        if (len(self._dense) < config.input_len
                or self._step % config.input_len != 0):
            return []
        dense = np.asarray(self._dense, dtype=np.int64)
        tables = np.asarray(self._tables, dtype=np.int64)
        predicted = self.model.predict_single(
            tables,
            dense % config.hash_buckets,
            self.encoder.normalize(dense),
            self.encoder.freq_values(dense),
            self.encoder,
        )
        return [int(p) for p in predicted[: config.max_prefetch_per_chunk]]
