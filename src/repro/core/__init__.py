"""RecMG core: the paper's primary contribution.

Two small seq2seq LSTM models with attention co-manage a priority GPU
buffer: the caching model marks cache-friendly vectors (trained on
OPTgen's optimal decisions), the prefetch model regresses the indices of
upcoming hard misses (trained with the bidirectional Chamfer loss).
"""

from .config import RecMGConfig
from .features import FeatureEncoder, EncodedChunks
from .caching_model import CachingModel
from .prefetch_model import PrefetchModel
from .labeling import (
    TrainingLabels,
    build_labels,
    caching_targets,
    prefetch_targets,
)
from .training import (
    TrainResult,
    train_caching_model,
    train_prefetch_model,
    caching_accuracy,
    prefetch_metrics,
    output_collapse_ratio,
)
from .manager import RecMGManager, ManagerStats, ModelPrefetcher
from .pipeline import (
    simulate_thread_throughput,
    PipelineSimulator,
    PipelineResult,
)
from .recmg import RecMG, FitReport
from .persistence import save_recmg, load_recmg

__all__ = [
    "RecMGConfig", "FeatureEncoder", "EncodedChunks",
    "CachingModel", "PrefetchModel",
    "TrainingLabels", "build_labels", "caching_targets", "prefetch_targets",
    "TrainResult", "train_caching_model", "train_prefetch_model",
    "caching_accuracy", "prefetch_metrics", "output_collapse_ratio",
    "RecMGManager", "ManagerStats", "ModelPrefetcher",
    "simulate_thread_throughput", "PipelineSimulator", "PipelineResult",
    "RecMG", "FitReport", "save_recmg", "load_recmg",
]
