"""Feature encoding for the RecMG models (paper Fig. 5, left side).

Both models consume chunks of ``input_len`` consecutive accesses, each
represented by its (table id, row id).  Following the paper, sequences
are truncated into fixed-size chunks regardless of query boundaries —
"an input sequence may come from the same or multiple inference
queries" — so cross-query correlations remain visible.

Per access we build three channels:

* an embedding of the **table id**,
* an embedding of the **hashed row id** (the paper's "Hashing" box:
  the raw row vocabulary is too large to embed directly),
* the **normalized dense index** as a scalar — the continuous value the
  prefetch model regresses and the Chamfer loss scores.

The dense vocabulary comes from :func:`repro.traces.access.remap_to_dense`,
which keeps same-table rows contiguous so nearby dense ids are
semantically related (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..traces.access import ROW_BITS, Trace, remap_to_dense
from .config import RecMGConfig


@dataclass
class EncodedChunks:
    """Fixed-size chunks ready for model consumption.

    All arrays have shape (num_chunks, input_len) except ``starts``
    which records each chunk's starting offset in the source trace.
    ``freq`` is the normalized log access frequency of each vector —
    popularity is the strongest predictor of cache-friendliness, and an
    access counter is cheaply available online.
    """

    table_ids: np.ndarray
    hashed_rows: np.ndarray
    norm_index: np.ndarray
    freq: np.ndarray
    dense_ids: np.ndarray
    starts: np.ndarray

    def __len__(self) -> int:
        return int(self.table_ids.shape[0])


class FeatureEncoder:
    """Maps traces to model inputs over a fixed dense vocabulary."""

    def __init__(self, config: RecMGConfig) -> None:
        self.config = config
        self._key_to_dense: Optional[Dict[int, int]] = None
        self._table_to_id: Optional[Dict[int, int]] = None
        self._freq_table: Optional[np.ndarray] = None
        # Sorted-key mirrors of the two dicts: dense ids are assigned in
        # sorted-key order, so bulk lookups reduce to np.searchsorted.
        self._sorted_keys: Optional[np.ndarray] = None
        self._sorted_tables: Optional[np.ndarray] = None
        #: Lazily built table-feature index per in-vocabulary dense id
        #: (serving segments carry dense ids only; see
        #: :meth:`tables_for_dense`).
        self._dense_tables: Optional[np.ndarray] = None
        self.vocab_size = 0
        self.num_tables = 0

    @property
    def fitted(self) -> bool:
        return self._key_to_dense is not None

    def fit(self, trace: Trace) -> "FeatureEncoder":
        """Learn the dense vocabulary, table universe and per-vector
        access frequencies from ``trace``."""
        dense, mapping = remap_to_dense(trace)
        self._key_to_dense = mapping
        self._sorted_keys = None    # invalidate searchsorted mirrors
        self._sorted_tables = None
        self._dense_tables = None
        self.vocab_size = len(mapping)
        tables = np.unique(trace.table_ids)
        self._table_to_id = {int(t): i for i, t in enumerate(tables)}
        self.num_tables = len(tables)
        counts = np.bincount(dense, minlength=self.vocab_size).astype(np.float64)
        log_counts = np.log1p(counts)
        peak = log_counts.max() if log_counts.size else 1.0
        self._freq_table = log_counts / max(peak, 1e-9)
        return self

    def freq_values(self, dense: np.ndarray) -> np.ndarray:
        """Normalized log-frequency per dense id (0 for unseen ids)."""
        if self._freq_table is None:
            raise RuntimeError("encoder not fitted")
        dense = np.asarray(dense, dtype=np.int64)
        clipped = np.clip(dense, 0, self.vocab_size - 1)
        values = self._freq_table[clipped]
        return np.where(dense < self.vocab_size, values, 0.0)

    # ------------------------------------------------------------------
    def dense_ids(self, trace: Trace) -> np.ndarray:
        """Dense id per access.

        Keys unseen at fit time receive *unique* ids above the
        vocabulary (``vocab_size + packed_key``): they still flow
        through hashing/normalization for the models, but they can never
        alias a trained vector — aliasing would fabricate buffer hits.
        """
        if not self.fitted:
            raise RuntimeError("encoder not fitted")
        keys = trace.keys()
        if self._sorted_keys is None:
            self._sorted_keys = np.sort(
                np.fromiter(self._key_to_dense, dtype=np.int64,
                            count=len(self._key_to_dense)))
        vocab = self.vocab_size
        if vocab == 0:
            return keys.copy()
        idx = np.searchsorted(self._sorted_keys, keys)
        known = ((idx < vocab)
                 & (self._sorted_keys[np.minimum(idx, vocab - 1)] == keys))
        return np.where(known, idx, vocab + keys)

    def table_indices(self, trace: Trace) -> np.ndarray:
        return self._map_tables(trace.table_ids)

    def _map_tables(self, tables: np.ndarray) -> np.ndarray:
        """Raw table ids -> model table-feature indices (tables unseen
        at fit time wrap into the embedding by modulo)."""
        num = max(1, self.num_tables)
        if self._sorted_tables is None:
            self._sorted_tables = np.sort(
                np.fromiter(self._table_to_id, dtype=np.int64,
                            count=len(self._table_to_id)))
        if self.num_tables == 0:
            return tables % num
        idx = np.searchsorted(self._sorted_tables, tables)
        known = ((idx < self.num_tables)
                 & (self._sorted_tables[np.minimum(idx, self.num_tables - 1)]
                    == tables))
        return np.where(known, idx, tables % num)

    def tables_for_dense(self, dense: np.ndarray) -> np.ndarray:
        """Model table-feature index per *dense* id — the lookup the
        online serving path needs, where segments carry dense ids but
        no trace.

        In-vocabulary ids resolve through a lazily built per-id table
        (dense id ``i`` is the ``i``-th sorted packed key, whose high
        bits are its table).  Spillover ids (``>= vocab_size``) encode
        ``vocab_size + packed_key`` (:meth:`dense_ids`), so their table
        is recovered from the packed key they carry — identical to
        what :meth:`table_indices` would produce from the source trace.
        """
        if not self.fitted:
            raise RuntimeError("encoder not fitted")
        dense = np.asarray(dense, dtype=np.int64)
        vocab = self.vocab_size
        if vocab == 0:
            return self._map_tables(dense >> ROW_BITS)
        if self._dense_tables is None:
            if self._sorted_keys is None:
                self._sorted_keys = np.sort(
                    np.fromiter(self._key_to_dense, dtype=np.int64,
                                count=len(self._key_to_dense)))
            self._dense_tables = np.ascontiguousarray(
                self._map_tables(self._sorted_keys >> ROW_BITS))
        in_vocab = dense < vocab
        known = self._dense_tables[np.clip(dense, 0, vocab - 1)]
        if in_vocab.all():
            return known
        # Negative packed keys where in_vocab — masked out by the where.
        spilled = self._map_tables((dense - vocab) >> ROW_BITS)
        return np.where(in_vocab, known, spilled)

    def normalize(self, dense: np.ndarray) -> np.ndarray:
        """Dense ids -> [0, 1] scalars (the regression target space).

        Unseen ids (>= vocab_size) clip to 1.0.
        """
        values = dense.astype(np.float64) / max(1, self.vocab_size - 1)
        return np.clip(values, 0.0, 1.0)

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        """Model outputs back to dense ids (rounded, clipped)."""
        scaled = np.clip(values, 0.0, 1.0) * max(1, self.vocab_size - 1)
        return np.rint(scaled).astype(np.int64)

    # ------------------------------------------------------------------
    def encode_chunks(self, trace: Trace, stride: Optional[int] = None
                      ) -> EncodedChunks:
        """Cut the trace into ``input_len`` chunks (stride defaults to
        the chunk length, i.e. non-overlapping)."""
        if not self.fitted:
            raise RuntimeError("encoder not fitted")
        length = self.config.input_len
        stride = stride or length
        dense = self.dense_ids(trace)
        tables = self.table_indices(trace)
        hashed = dense % self.config.hash_buckets
        norm = self.normalize(dense)
        starts = np.arange(0, len(dense) - length + 1, stride)
        if len(starts) == 0:
            raise ValueError(
                f"trace shorter ({len(dense)}) than one chunk ({length})"
            )
        idx = starts[:, None] + np.arange(length)[None, :]
        freq = self.freq_values(dense)
        return EncodedChunks(
            table_ids=tables[idx],
            hashed_rows=hashed[idx],
            norm_index=norm[idx],
            freq=freq[idx],
            dense_ids=dense[idx],
            starts=starts,
        )

    def encode_dense_chunks(self, dense: np.ndarray) -> EncodedChunks:
        """Encode a live *dense-id* segment into non-overlapping chunks
        — the serving-side twin of :meth:`encode_chunks`, for call
        sites that hold a stream of dense ids rather than a trace (the
        priority providers, the online retrainer).

        The tail is right-padded by repeating the segment's last access
        so any length >= 1 encodes; pad positions are real features of
        a repeated access, and callers slice per-position model outputs
        back to the true length.  For a segment whose length is a
        multiple of ``input_len``, the features are identical to what
        :meth:`encode_chunks` produces from the source trace.
        """
        if not self.fitted:
            raise RuntimeError("encoder not fitted")
        dense = np.asarray(dense, dtype=np.int64)
        if dense.size == 0:
            raise ValueError("cannot encode an empty segment")
        length = self.config.input_len
        pad = (-dense.size) % length
        if pad:
            dense = np.concatenate([dense, np.full(pad, dense[-1])])
        tables = self.tables_for_dense(dense)
        hashed = dense % self.config.hash_buckets
        norm = self.normalize(dense)
        freq = self.freq_values(dense)
        starts = np.arange(0, dense.size, length)
        idx = starts[:, None] + np.arange(length)[None, :]
        return EncodedChunks(
            table_ids=tables[idx],
            hashed_rows=hashed[idx],
            norm_index=norm[idx],
            freq=freq[idx],
            dense_ids=dense[idx],
            starts=starts,
        )
