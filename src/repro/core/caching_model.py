"""RecMG caching model (paper §V-A, Fig. 5a).

An LSTM encoder with attention reads a chunk of accesses and emits, per
input position, a 1-bit priority: should this vector stay in the GPU
buffer?  The output sequence has the same length as the input, so each
position classifies *its own* access — we therefore align outputs with
encoder states by construction (position ``t``'s logit is computed from
encoder state ``t`` attending over the whole chunk), instead of asking
a free-running decoder to learn the alignment.  Trained as binary
classification (cross-entropy / sigmoid) against OPTgen's cache-friendly
labels, which lets the model approximate Belady's policy online.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, LSTM, Linear, Module, Tensor, concat, softmax
from .config import RecMGConfig
from .features import EncodedChunks


class CachingModel(Module):
    """Binary keep-in-buffer classifier over access chunks."""

    def __init__(self, config: RecMGConfig, num_tables: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.table_embedding = Embedding(max(1, num_tables), config.embed_dim,
                                         rng=rng)
        self.row_embedding = Embedding(config.hash_buckets, config.embed_dim,
                                       rng=rng)
        input_size = 2 * config.embed_dim + 2
        self.lstm_layers = [
            LSTM(input_size if i == 0 else config.hidden, config.hidden,
                 rng=rng)
            for i in range(config.caching_stacks)
        ]
        from ..nn import init as initializers

        self.att_weight = Tensor(
            initializers.xavier_uniform((config.hidden, config.hidden), rng),
            requires_grad=True,
        )
        self.combine = Linear(2 * config.hidden, config.hidden, rng=rng)
        self.head = Linear(config.hidden, 1, rng=rng)

    # ------------------------------------------------------------------
    def _inputs(self, chunks: EncodedChunks, sel: np.ndarray) -> Tensor:
        batch = len(sel)
        length = self.config.input_len
        tables = self.table_embedding(chunks.table_ids[sel].reshape(-1))
        rows = self.row_embedding(chunks.hashed_rows[sel].reshape(-1))
        dim = self.config.embed_dim
        scalars = Tensor(np.stack([
            chunks.norm_index[sel].reshape(-1),
            chunks.freq[sel].reshape(-1),
        ], axis=1))
        features = concat([tables, rows, scalars], axis=1)
        return features.reshape(batch, length, 2 * dim + 2)

    def forward(self, chunks: EncodedChunks,
                sel: Optional[np.ndarray] = None) -> Tensor:
        """Logits of shape (batch, input_len)."""
        if sel is None:
            sel = np.arange(len(chunks))
        states = self._inputs(chunks, sel)
        for layer in self.lstm_layers:
            states, _ = layer(states)                 # (B, L, H)
        batch, length, hidden = states.shape
        # Position-aligned attention: every position attends over the
        # full chunk ("even when accesses ... are far apart", §V).
        projected = states @ self.att_weight          # (B, L, H)
        scores = projected @ states.transpose(0, 2, 1)  # (B, L, L)
        weights = softmax(scores, axis=-1)
        context = weights @ states                    # (B, L, H)
        combined = concat([states, context], axis=2)  # (B, L, 2H)
        combined = combined.reshape(batch * length, 2 * hidden)
        hidden_out = self.combine(combined).tanh()
        logits = self.head(hidden_out)
        return logits.reshape(batch, length)

    # ------------------------------------------------------------------
    def predict(self, chunks: EncodedChunks,
                sel: Optional[np.ndarray] = None) -> np.ndarray:
        """Binary keep/evict decisions, shape (batch, input_len)."""
        logits = self.forward(chunks, sel=sel)
        return (logits.data > 0.0).astype(np.int8)

    def predict_single(self, table_ids: np.ndarray, hashed_rows: np.ndarray,
                       norm_index: np.ndarray, freq: np.ndarray) -> np.ndarray:
        """Decision bits for one raw chunk (used by the online manager)."""
        chunk = EncodedChunks(
            table_ids=table_ids.reshape(1, -1),
            hashed_rows=hashed_rows.reshape(1, -1),
            norm_index=norm_index.reshape(1, -1),
            freq=freq.reshape(1, -1),
            dense_ids=np.zeros_like(table_ids).reshape(1, -1),
            starts=np.zeros(1, dtype=np.int64),
        )
        return self.predict(chunk)[0]
