"""Ground-truth generation for RecMG training (paper §VI-A).

Pipeline: trace -> OPTgen (at ``optgen_fraction`` of the GPU buffer, the
paper's 80% headroom rule) -> *caching trace* of per-access keep bits ->
*prefetch trace* of the accesses that still miss under OPT.

The caching model trains on (chunk -> keep bits); the prefetch model
trains on (chunk -> window of upcoming OPT misses), with the window
longer than the model output (paper Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..cache.optgen import run_optgen
from ..traces.access import Trace
from .config import RecMGConfig
from .features import EncodedChunks, FeatureEncoder


@dataclass
class TrainingLabels:
    """Everything derived from one OPTgen pass over a training trace."""

    #: Per-access keep-in-buffer bit (the caching trace).
    cache_friendly: np.ndarray
    #: Per-access OPT hit bit.
    opt_hits: np.ndarray
    #: Sorted positions (into the trace) of OPT misses (the prefetch trace).
    miss_positions: np.ndarray
    #: Dense id of every access (aligned with the trace).
    dense_ids: np.ndarray
    #: OPT hit rate achieved by the labeling pass.
    opt_hit_rate: float


def build_labels(trace: Trace, buffer_capacity: int, config: RecMGConfig,
                 encoder: FeatureEncoder) -> TrainingLabels:
    """Run OPTgen and derive caching + prefetch ground truth."""
    budget = max(1, int(buffer_capacity * config.optgen_fraction))
    result = run_optgen(trace, budget)
    miss_positions = np.nonzero(~result.opt_hits)[0]
    return TrainingLabels(
        cache_friendly=result.cache_friendly.astype(np.float64),
        opt_hits=result.opt_hits,
        miss_positions=miss_positions,
        dense_ids=encoder.dense_ids(trace),
        opt_hit_rate=result.hit_rate,
    )


def label_live_window(dense_ids: np.ndarray, buffer_capacity: int,
                      config: RecMGConfig) -> np.ndarray:
    """Per-access keep bits for a *live* dense-id window — the online
    twin of :func:`build_labels`, for the retraining loop
    (:class:`repro.core.training.OnlineCachingTrainer`).

    Dense ids round-trip through :meth:`Trace.from_keys` losslessly
    (packing splits and re-joins the same 64-bit value), and OPTgen
    only consumes key *identity*, so the same vectorized OPTgen labels
    the window at the same budget (``capacity * optgen_fraction``) as
    offline labeling — the labels match what an offline pass over the
    underlying accesses would produce for this window.
    """
    dense_ids = np.asarray(dense_ids, dtype=np.int64)
    budget = max(1, int(buffer_capacity * config.optgen_fraction))
    result = run_optgen(Trace.from_keys(dense_ids), budget)
    return result.cache_friendly.astype(np.float64)


def window_targets(dense_ids: np.ndarray, buffer_capacity: int,
                   config: RecMGConfig) -> np.ndarray:
    """Chunk-aligned OPTgen keep targets for a live dense-id window.

    :func:`label_live_window` bits, tail-padded with the last bit to a
    whole number of ``input_len`` chunks (mirroring how
    ``FeatureEncoder.encode_dense_chunks`` pads features) and reshaped
    to ``(num_chunks, input_len)`` — directly consumable by
    :func:`repro.core.training.finetune_caching_model` against the
    encoded chunks of the same ids.  ``buffer_capacity`` is the
    capacity the labels are *for*: pass the serving capacity, not the
    capacity the model happened to be trained at (the low-capacity
    lift inversion is exactly that mismatch).
    """
    dense_ids = np.asarray(dense_ids, dtype=np.int64)
    if dense_ids.size == 0:
        raise ValueError("cannot label an empty window")
    bits = label_live_window(dense_ids, buffer_capacity, config)
    length = config.input_len
    pad = (-bits.size) % length
    if pad:
        bits = np.concatenate([bits, np.full(pad, bits[-1])])
    return bits.reshape(-1, length)


def caching_targets(chunks: EncodedChunks,
                    labels: TrainingLabels) -> np.ndarray:
    """Per-chunk binary targets, shape (num_chunks, input_len)."""
    length = chunks.table_ids.shape[1]
    idx = chunks.starts[:, None] + np.arange(length)[None, :]
    return labels.cache_friendly[idx]


def prefetch_targets(chunks: EncodedChunks, labels: TrainingLabels,
                     config: RecMGConfig, encoder: FeatureEncoder,
                     window: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluation windows of upcoming OPT misses per chunk.

    Returns ``(sel, windows_norm, windows_dense)`` where ``sel`` indexes
    chunks that have a full window of future misses, ``windows_norm`` is
    (len(sel), window) of normalized targets for the Chamfer loss, and
    ``windows_dense`` holds the raw dense ids for metric computation.
    """
    window = window or config.eval_window
    length = chunks.table_ids.shape[1]
    miss_positions = labels.miss_positions
    # Vectorized window extraction: one searchsorted over all chunk
    # ends, then a broadcast gather for the selected chunks.
    chunk_ends = chunks.starts + length  # first position after each chunk
    lo = np.searchsorted(miss_positions, chunk_ends)
    full = lo + window <= len(miss_positions)
    sel_arr = np.nonzero(full)[0].astype(np.int64)
    if sel_arr.size == 0:
        raise ValueError("no chunk has a full window of future misses; "
                         "use a longer trace or a smaller window")
    future = miss_positions[lo[full, None] + np.arange(window)[None, :]]
    dense_arr = labels.dense_ids[future]
    return sel_arr, encoder.normalize(dense_arr), dense_arr
