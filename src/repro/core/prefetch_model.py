"""RecMG prefetch model (paper §V-B, Fig. 5b).

Two seq2seq LSTM stacks with attention followed by a fully connected
projection.  The encoder/decoder "naturally generates a dense
representation of embedding vectors in a continuous space" (paper §V);
we exploit that directly: the model emits ``output_len`` *vectors* in
the row-embedding space, the bidirectional Chamfer loss (Eq. 5) matches
the emitted set against the embeddings of the evaluation window, and
decoding maps each emitted vector to the nearest row-embedding bucket
and then to the hottest miss candidate hashed into that bucket.

This sidesteps the precision wall of regressing a raw scalar index over
a large vocabulary while preserving the paper's structure: sequence
output, Chamfer training with a decoupled (longer) evaluation window,
and an index-producing projection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, Linear, Module, StackedSeq2Seq, Tensor, concat
from .config import RecMGConfig
from .features import EncodedChunks


class BucketDecoder:
    """Maps emitted vectors to embedding-vector ids.

    ``bucket_hot[b]`` is the dense id of the most frequently *missing*
    vector whose hash bucket is ``b`` (or -1 when no miss candidate
    hashes there).  Decoding = nearest bucket embedding (L1), then the
    bucket's hot candidate; bucketless outputs fall back to the global
    hottest miss candidate.
    """

    def __init__(self, bucket_hot: np.ndarray, fallback: int) -> None:
        self.bucket_hot = np.asarray(bucket_hot, dtype=np.int64)
        self.fallback = int(fallback)

    @classmethod
    def from_miss_ids(cls, miss_dense_ids: np.ndarray,
                      hash_buckets: int) -> "BucketDecoder":
        ids, counts = np.unique(miss_dense_ids, return_counts=True)
        bucket_hot = np.full(hash_buckets, -1, dtype=np.int64)
        best_count = np.zeros(hash_buckets, dtype=np.int64)
        for dense_id, count in zip(ids, counts):
            bucket = int(dense_id) % hash_buckets
            if count > best_count[bucket]:
                best_count[bucket] = count
                bucket_hot[bucket] = dense_id
        fallback = int(ids[np.argmax(counts)]) if len(ids) else 0
        return cls(bucket_hot, fallback)

    def decode(self, vectors: np.ndarray, bucket_embeddings: np.ndarray
               ) -> np.ndarray:
        """``vectors``: (..., d) emitted points; returns dense ids."""
        flat = vectors.reshape(-1, vectors.shape[-1])
        # L1 nearest bucket; restrict to buckets that have a candidate.
        valid = np.nonzero(self.bucket_hot >= 0)[0]
        if len(valid) == 0:
            return np.full(vectors.shape[:-1], self.fallback, dtype=np.int64)
        candidates = bucket_embeddings[valid]                 # (V, d)
        dists = np.abs(flat[:, None, :] - candidates[None, :, :]).sum(axis=2)
        nearest = valid[np.argmin(dists, axis=1)]
        return self.bucket_hot[nearest].reshape(vectors.shape[:-1])

    def decode_buckets(self, logits: np.ndarray) -> np.ndarray:
        """``logits``: (..., num_buckets) scores; returns dense ids of
        the highest-scoring bucket that has a miss candidate."""
        flat = logits.reshape(-1, logits.shape[-1])
        masked = np.where(self.bucket_hot >= 0, flat, -np.inf)
        best = np.argmax(masked, axis=1)
        ids = self.bucket_hot[best]
        ids = np.where(ids >= 0, ids, self.fallback)
        return ids.reshape(logits.shape[:-1])


class PrefetchModel(Module):
    """Sequence model: chunk of accesses -> vectors -> indices to prefetch."""

    def __init__(self, config: RecMGConfig, num_tables: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(config.seed + 1)
        self.config = config
        self.decoder: Optional[BucketDecoder] = None
        self.table_embedding = Embedding(max(1, num_tables), config.embed_dim,
                                         rng=rng)
        self.row_embedding = Embedding(config.hash_buckets, config.embed_dim,
                                       rng=rng)
        self.backbone = StackedSeq2Seq(
            input_size=2 * config.embed_dim + 2,
            hidden_size=config.hidden,
            out_steps=config.output_len,
            num_stacks=config.prefetch_stacks,
            rng=rng,
        )
        # "Fully Connected & Projection" (Fig. 5b): attention vectors ->
        # scores over index buckets; the emitted *point* scored by the
        # Chamfer loss is the probability-weighted codeword.
        self.projection = Linear(config.hidden, config.hidden, rng=rng)
        self.head = Linear(config.hidden, config.hash_buckets, rng=rng)
        # Fixed random codebook defining the target space: one point per
        # hash bucket.  Keeping it frozen makes the Chamfer objective
        # stationary (trainable targets would drift under the encoder's
        # own updates); soft bucket scores are differentiable through
        # the expected codeword.
        self.target_table = Tensor(
            rng.normal(0.0, 1.0, size=(config.hash_buckets, config.embed_dim))
        )

    def _inputs(self, chunks: EncodedChunks, sel: np.ndarray) -> Tensor:
        batch = len(sel)
        length = self.config.input_len
        tables = self.table_embedding(chunks.table_ids[sel].reshape(-1))
        rows = self.row_embedding(chunks.hashed_rows[sel].reshape(-1))
        dim = self.config.embed_dim
        scalars = Tensor(np.stack([
            chunks.norm_index[sel].reshape(-1),
            chunks.freq[sel].reshape(-1),
        ], axis=1))
        features = concat([tables, rows, scalars], axis=1)
        return features.reshape(batch, length, 2 * dim + 2)

    def forward_logits(self, chunks: EncodedChunks,
                       sel: Optional[np.ndarray] = None) -> Tensor:
        """Bucket scores, shape (batch, output_len, hash_buckets)."""
        if sel is None:
            sel = np.arange(len(chunks))
        inputs = self._inputs(chunks, sel)
        states = self.backbone(inputs)                  # (B, P, H)
        batch, steps, hidden = states.shape
        hidden_flat = states.reshape(batch * steps, hidden)
        projected = self.projection(hidden_flat).tanh()
        logits = self.head(projected)
        return logits.reshape(batch, steps, self.config.hash_buckets)

    def forward(self, chunks: EncodedChunks,
                sel: Optional[np.ndarray] = None) -> Tensor:
        """Emitted points (expected codewords), (batch, output_len, dim)."""
        from ..nn import softmax as _softmax

        logits = self.forward_logits(chunks, sel=sel)
        probs = _softmax(logits, axis=-1)               # (B, P, K)
        return probs @ self.target_table                # (B, P, D)

    # ------------------------------------------------------------------
    def target_points(self, hashed_window: np.ndarray) -> Tensor:
        """Codebook points of the evaluation-window ids (constants)."""
        batch, window = hashed_window.shape
        points = self.target_table.data[hashed_window.reshape(-1)]
        return Tensor(points.reshape(batch, window, self.config.embed_dim))

    def set_decoder(self, decoder: BucketDecoder) -> None:
        """Attach the bucket decoder (built during fit from miss ids)."""
        self.decoder = decoder

    def predict_indices(self, chunks: EncodedChunks, encoder,
                        sel: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense embedding-vector ids to prefetch, (batch, output_len)."""
        if self.decoder is None:
            raise RuntimeError("no decoder attached; call set_decoder()")
        logits = self.forward_logits(chunks, sel=sel).data
        return self.decoder.decode_buckets(logits)

    def predict_single(self, table_ids: np.ndarray, hashed_rows: np.ndarray,
                       norm_index: np.ndarray, freq: np.ndarray,
                       encoder) -> np.ndarray:
        chunk = EncodedChunks(
            table_ids=table_ids.reshape(1, -1),
            hashed_rows=hashed_rows.reshape(1, -1),
            norm_index=norm_index.reshape(1, -1),
            freq=freq.reshape(1, -1),
            dense_ids=np.zeros_like(table_ids).reshape(1, -1),
            starts=np.zeros(1, dtype=np.int64),
        )
        return self.predict_indices(chunk, encoder)[0]
