"""Persistence for a trained RecMG system.

Saves everything deployment needs — both models' parameters, the
prefetch decoder, the encoder's vocabulary/frequency tables and the
config — into one ``.npz`` archive, so a system trained offline (paper
§VI-A) can be shipped to the serving tier.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Union

import numpy as np

from .caching_model import CachingModel
from .config import RecMGConfig
from .features import FeatureEncoder
from .prefetch_model import BucketDecoder, PrefetchModel
from .recmg import RecMG


def save_recmg(system: RecMG, path: Union[str, os.PathLike]) -> None:
    """Serialize a fitted RecMG system to ``path`` (.npz)."""
    if not system.fitted:
        raise RuntimeError("cannot save an unfitted system")
    encoder = system.encoder
    decoder = system.prefetch_model.decoder
    payload = {
        "config_json": np.array(json.dumps(asdict(system.config))),
        "encoder_keys": np.array(sorted(encoder._key_to_dense),
                                 dtype=np.int64),
        "encoder_tables": np.array(sorted(encoder._table_to_id),
                                   dtype=np.int64),
        "encoder_freq": encoder._freq_table,
        "decoder_bucket_hot": decoder.bucket_hot,
        "decoder_fallback": np.array(decoder.fallback, dtype=np.int64),
        "prefetch_codebook": system.prefetch_model.target_table.data,
    }
    for name, param in system.caching_model.named_parameters():
        payload[f"caching.{name}"] = param.data
    for name, param in system.prefetch_model.named_parameters():
        payload[f"prefetch.{name}"] = param.data
    np.savez_compressed(path, **payload)


def load_recmg(path: Union[str, os.PathLike]) -> RecMG:
    """Restore a RecMG system saved by :func:`save_recmg`."""
    with np.load(path, allow_pickle=False) as archive:
        config = RecMGConfig(**json.loads(str(archive["config_json"])))
        system = RecMG(config)

        encoder = FeatureEncoder(config)
        keys = archive["encoder_keys"]
        tables = archive["encoder_tables"]
        encoder._key_to_dense = {int(k): i for i, k in enumerate(keys)}
        encoder._table_to_id = {int(t): i for i, t in enumerate(tables)}
        encoder._freq_table = archive["encoder_freq"]
        encoder.vocab_size = len(keys)
        encoder.num_tables = len(tables)
        system.encoder = encoder

        system.caching_model = CachingModel(config, encoder.num_tables)
        system.caching_model.load_state_dict({
            name[len("caching."):]: archive[name]
            for name in archive.files if name.startswith("caching.")
        })
        system.prefetch_model = PrefetchModel(config, encoder.num_tables)
        system.prefetch_model.load_state_dict({
            name[len("prefetch."):]: archive[name]
            for name in archive.files if name.startswith("prefetch.")
        })
        system.prefetch_model.target_table.data = archive["prefetch_codebook"]
        system.prefetch_model.set_decoder(BucketDecoder(
            archive["decoder_bucket_hot"],
            int(archive["decoder_fallback"]),
        ))
    return system
