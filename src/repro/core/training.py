"""Offline trainers and evaluators for the RecMG models (paper §VI-A)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import (
    Adam,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    l2_loss,
)
from .caching_model import CachingModel
from .config import RecMGConfig
from .features import EncodedChunks, FeatureEncoder
from .prefetch_model import PrefetchModel


@dataclass
class TrainResult:
    """Training run summary (paper Table III reports these columns)."""

    losses: List[float]
    duration_s: float
    num_parameters: int
    final_metric: float  # accuracy (caching) or correctness (prefetch)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _train_split(n: int, holdout: float, rng: np.random.Generator
                 ) -> Tuple[np.ndarray, np.ndarray]:
    order = rng.permutation(n)
    cut = max(1, int(n * (1.0 - holdout)))
    return order[:cut], order[cut:] if cut < n else order[:1]


# ----------------------------------------------------------------------
# Caching model
# ----------------------------------------------------------------------
def train_caching_model(model: CachingModel, chunks: EncodedChunks,
                        targets: np.ndarray, config: RecMGConfig,
                        holdout: float = 0.15) -> TrainResult:
    """Binary cross-entropy training against OPTgen keep bits.

    Positive/negative classes are reweighted by inverse frequency so the
    model is not dominated by whichever bit is more common.
    """
    rng = np.random.default_rng(config.seed)
    n = min(len(chunks), config.max_train_chunks)
    train_sel, test_sel = _train_split(n, holdout, rng)
    pos_rate = float(targets[:n].mean())
    pos_weight = 0.5 / max(pos_rate, 1e-3)
    neg_weight = 0.5 / max(1.0 - pos_rate, 1e-3)

    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    start = time.perf_counter()
    for _ in range(config.caching_epochs):
        rng.shuffle(train_sel)
        for lo in range(0, len(train_sel), config.batch_size):
            sel = train_sel[lo:lo + config.batch_size]
            logits = model(chunks, sel=sel)
            batch_targets = targets[sel]
            weights = np.where(batch_targets > 0.5, pos_weight, neg_weight)
            loss = bce_with_logits(logits, Tensor(batch_targets),
                                   weights=Tensor(weights))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
    duration = time.perf_counter() - start
    accuracy = caching_accuracy(model, chunks, targets, sel=test_sel)
    return TrainResult(losses=losses, duration_s=duration,
                       num_parameters=model.num_parameters(),
                       final_metric=accuracy)


def caching_accuracy(model: CachingModel, chunks: EncodedChunks,
                     targets: np.ndarray,
                     sel: Optional[np.ndarray] = None) -> float:
    """Per-position binary accuracy against OPTgen labels."""
    if sel is None:
        sel = np.arange(len(chunks))
    predictions = model.predict(chunks, sel=sel)
    return float((predictions == (targets[sel] > 0.5)).mean())


# ----------------------------------------------------------------------
# Prefetch model
# ----------------------------------------------------------------------
def _chamfer_ce_loss(model: PrefetchModel, chunks: EncodedChunks,
                     sel_rows: np.ndarray, windows_hashed: np.ndarray,
                     config: RecMGConfig, alpha: Optional[float]) -> "Tensor":
    """Bidirectional Chamfer loss (Eq. 5) with cross-entropy distance.

    The Chamfer structure is kept verbatim — every output point is
    matched to its nearest evaluation-window point and vice versa — but
    the per-pair distance is the cross entropy between the output step's
    bucket distribution and the matched point's bucket.  The matching
    uses the (detached) expected codewords, so it is exactly the Eq. 4
    argmin; CE supplies a gradient that can commit to a bucket, which
    plain L1 on expected codewords cannot (it stalls at the codebook
    centroid).  ``alpha=None`` gives the forward-only ablation (Eq. 4),
    which collapses outputs, reproducing the paper's shortcut problem.
    """
    from ..nn import log_softmax

    logits = model.forward_logits(chunks, sel=sel_rows)    # (B, P, K)
    batch, steps, num_buckets = logits.shape
    codebook = model.target_table.data                      # (K, D)

    from ..nn import softmax as _softmax
    probs = _softmax(logits, axis=-1).data
    points = probs @ codebook                               # (B, P, D)
    targets = codebook[windows_hashed]                      # (B, W, D)
    dist = np.abs(points[:, :, None, :] - targets[:, None, :, :]).mean(axis=3)

    logp = log_softmax(logits.reshape(batch * steps, num_buckets), axis=-1)

    # Forward term: each output point claims its nearest window point.
    fwd_assign = np.argmin(dist, axis=2)                    # (B, P)
    fwd_rows = np.arange(batch * steps)
    fwd_labels = windows_hashed[np.arange(batch)[:, None],
                                fwd_assign].reshape(-1)
    fwd_loss = logp[fwd_rows, fwd_labels].mean() * -1.0
    if alpha is None:
        return fwd_loss

    # Reverse term: each window point trains its nearest output step.
    rev_assign = np.argmin(dist, axis=1)                    # (B, W)
    rev_rows = (np.arange(batch)[:, None] * steps + rev_assign).reshape(-1)
    rev_labels = windows_hashed.reshape(-1)
    rev_loss = logp[rev_rows, rev_labels].mean() * -1.0
    return fwd_loss * alpha + rev_loss * (1.0 - alpha)


def train_prefetch_model(model: PrefetchModel, chunks: EncodedChunks,
                         sel: np.ndarray, windows_norm: np.ndarray,
                         windows_dense: np.ndarray, encoder: FeatureEncoder,
                         config: RecMGConfig, loss_kind: str = "chamfer",
                         holdout: float = 0.15) -> TrainResult:
    """Train with the bidirectional Chamfer loss (or ablation variants).

    ``loss_kind``: ``"chamfer"`` (paper Eq. 5), ``"chamfer_forward"``
    (Eq. 4 only — exhibits the collapse shortcut), or ``"l2"`` (the
    Fig. 11 baseline; uses a truncated window equal to the output).
    """
    if loss_kind not in ("chamfer", "chamfer_forward", "l2"):
        raise ValueError(f"unknown loss kind {loss_kind!r}")
    rng = np.random.default_rng(config.seed + 7)
    n = min(len(sel), config.max_train_chunks)
    order = rng.permutation(n)
    cut = max(1, int(n * (1.0 - holdout)))
    train_rows, test_rows = order[:cut], order[cut:] if cut < n else order[:1]

    windows_hashed = windows_dense % config.hash_buckets
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    start = time.perf_counter()
    for _ in range(config.prefetch_epochs):
        rng.shuffle(train_rows)
        for lo in range(0, len(train_rows), config.batch_size):
            rows = train_rows[lo:lo + config.batch_size]
            if loss_kind == "chamfer":
                loss = _chamfer_ce_loss(model, chunks, sel[rows],
                                        windows_hashed[rows], config,
                                        alpha=config.alpha)
            elif loss_kind == "chamfer_forward":
                loss = _chamfer_ce_loss(model, chunks, sel[rows],
                                        windows_hashed[rows], config,
                                        alpha=None)
            else:
                outputs = model(chunks, sel=sel[rows])
                window = model.target_points(windows_hashed[rows])
                loss = l2_loss(outputs, window)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
    duration = time.perf_counter() - start
    correctness, _ = prefetch_metrics(model, chunks, sel[test_rows],
                                      windows_dense[test_rows], encoder)
    return TrainResult(losses=losses, duration_s=duration,
                       num_parameters=model.num_parameters(),
                       final_metric=correctness)


def prefetch_metrics(model: PrefetchModel, chunks: EncodedChunks,
                     sel: np.ndarray, windows_dense: np.ndarray,
                     encoder: FeatureEncoder,
                     tolerance: int = 0) -> Tuple[float, float]:
    """(correctness, coverage) of predicted indices vs evaluation windows.

    Correctness: fraction of predicted indices present in their window
    (within ``tolerance`` dense ids).  Coverage (Eq. 2): per-window
    unique overlap |out ∩ gt| / |gt|, averaged.
    """
    predictions = model.predict_indices(chunks, encoder, sel=sel)
    correct = 0
    total = 0
    coverage_sum = 0.0
    for row in range(len(sel)):
        window = windows_dense[row]
        window_set = set(int(w) for w in window)
        predicted = predictions[row]
        for value in predicted:
            total += 1
            if tolerance == 0:
                hit = int(value) in window_set
            else:
                hit = bool(np.any(np.abs(window - value) <= tolerance))
            if hit:
                correct += 1
        overlap = len(set(int(v) for v in predicted) & window_set)
        coverage_sum += overlap / max(1, len(window_set))
    correctness = correct / total if total else 0.0
    coverage = coverage_sum / max(1, len(sel))
    return correctness, coverage


def output_collapse_ratio(model: PrefetchModel, chunks: EncodedChunks,
                          sel: np.ndarray, encoder: FeatureEncoder) -> float:
    """Fraction of chunks whose predicted indices are all identical.

    The paper's motivation for the bidirectional Chamfer term: with the
    forward-only loss "the prediction result tends to have the same
    value in all elements in PO".
    """
    predictions = model.predict_indices(chunks, encoder, sel=sel)
    same = np.all(predictions == predictions[:, :1], axis=1)
    return float(same.mean())
