"""Offline trainers and evaluators for the RecMG models (paper §VI-A)."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import (
    Adam,
    Tensor,
    bce_with_logits,
    clip_grad_norm,
    l2_loss,
)
from .caching_model import CachingModel
from .config import RecMGConfig
from .features import EncodedChunks, FeatureEncoder
from .prefetch_model import PrefetchModel


@dataclass
class TrainResult:
    """Training run summary (paper Table III reports these columns)."""

    losses: List[float]
    duration_s: float
    num_parameters: int
    final_metric: float  # accuracy (caching) or correctness (prefetch)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _train_split(n: int, holdout: float, rng: np.random.Generator
                 ) -> Tuple[np.ndarray, np.ndarray]:
    order = rng.permutation(n)
    cut = max(1, int(n * (1.0 - holdout)))
    return order[:cut], order[cut:] if cut < n else order[:1]


# ----------------------------------------------------------------------
# Caching model
# ----------------------------------------------------------------------
def train_caching_model(model: CachingModel, chunks: EncodedChunks,
                        targets: np.ndarray, config: RecMGConfig,
                        holdout: float = 0.15) -> TrainResult:
    """Binary cross-entropy training against OPTgen keep bits.

    Positive/negative classes are reweighted by inverse frequency so the
    model is not dominated by whichever bit is more common.
    """
    rng = np.random.default_rng(config.seed)
    n = min(len(chunks), config.max_train_chunks)
    train_sel, test_sel = _train_split(n, holdout, rng)
    pos_rate = float(targets[:n].mean())
    pos_weight = 0.5 / max(pos_rate, 1e-3)
    neg_weight = 0.5 / max(1.0 - pos_rate, 1e-3)

    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    start = time.perf_counter()
    for _ in range(config.caching_epochs):
        rng.shuffle(train_sel)
        for lo in range(0, len(train_sel), config.batch_size):
            sel = train_sel[lo:lo + config.batch_size]
            logits = model(chunks, sel=sel)
            batch_targets = targets[sel]
            weights = np.where(batch_targets > 0.5, pos_weight, neg_weight)
            loss = bce_with_logits(logits, Tensor(batch_targets),
                                   weights=Tensor(weights))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
    duration = time.perf_counter() - start
    accuracy = caching_accuracy(model, chunks, targets, sel=test_sel)
    return TrainResult(losses=losses, duration_s=duration,
                       num_parameters=model.num_parameters(),
                       final_metric=accuracy)


def clone_caching_model(model: CachingModel) -> CachingModel:
    """Weight-identical deep copy of a caching model.

    The online retrainer fine-tunes the clone while serving keeps
    predicting with the original, then swaps by reference assignment —
    so the two must share no parameter storage."""
    clone = CachingModel(model.config, model.table_embedding.num_embeddings)
    clone.load_state_dict(model.state_dict())
    return clone


def finetune_caching_model(model: CachingModel, chunks: EncodedChunks,
                           targets: np.ndarray, config: RecMGConfig,
                           epochs: Optional[int] = None,
                           lr: Optional[float] = None) -> TrainResult:
    """Few-epoch in-place fine-tune on a live labeled window.

    The online variant of :func:`train_caching_model`: same weighted
    BCE and clipping, but no holdout split (the window is small and
    recent — every chunk trains) and no shuffling permutation cost per
    epoch beyond the rng draw; ``final_metric`` is *in-sample*
    accuracy, a convergence indicator rather than a generalization
    estimate."""
    rng = np.random.default_rng(config.seed + 13)
    n = len(chunks)
    epochs = epochs if epochs is not None else config.online_retrain_epochs
    lr = lr if lr is not None else config.learning_rate
    pos_rate = float(targets[:n].mean())
    pos_weight = 0.5 / max(pos_rate, 1e-3)
    neg_weight = 0.5 / max(1.0 - pos_rate, 1e-3)

    optimizer = Adam(model.parameters(), lr=lr)
    losses: List[float] = []
    train_sel = np.arange(n)
    start = time.perf_counter()
    for _ in range(epochs):
        rng.shuffle(train_sel)
        for lo in range(0, n, config.batch_size):
            sel = train_sel[lo:lo + config.batch_size]
            logits = model(chunks, sel=sel)
            batch_targets = targets[sel]
            weights = np.where(batch_targets > 0.5, pos_weight, neg_weight)
            loss = bce_with_logits(logits, Tensor(batch_targets),
                                   weights=Tensor(weights))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
    duration = time.perf_counter() - start
    accuracy = caching_accuracy(model, chunks, targets)
    return TrainResult(losses=losses, duration_s=duration,
                       num_parameters=model.num_parameters(),
                       final_metric=accuracy)


def finetune_for_capacity(model: CachingModel, dense_ids: np.ndarray,
                          buffer_capacity: int, config: RecMGConfig,
                          encoder: FeatureEncoder,
                          epochs: Optional[int] = None,
                          lr: Optional[float] = None
                          ) -> Tuple[CachingModel, TrainResult]:
    """Capacity-matched adaptation of an offline caching model.

    OPTgen keep bits are a function of the buffer capacity: a key worth
    keeping in a 20%-capacity buffer often is *not* worth keeping in a
    5% one, so serving a model at a much smaller capacity than its
    training labels assumed inverts its lift — the model overcommits
    the smaller buffer (ROADMAP's low-capacity inversion).  This is
    the offline-to-serving adapter: relabel ``dense_ids`` (a recent
    window of the stream the model will serve, e.g. the training head)
    with OPTgen **at the serving capacity**
    (:func:`repro.core.labeling.window_targets`) and fine-tune a
    *clone* on those labels — the same label-at-capacity rule the
    online retrainer applies continuously, applied once up front.
    Returns ``(tuned_model, train_result)``; the original model is
    untouched.
    """
    dense_ids = np.asarray(dense_ids, dtype=np.int64)
    from .labeling import window_targets

    targets = window_targets(dense_ids, buffer_capacity, config)
    chunks = encoder.encode_dense_chunks(dense_ids)
    tuned = clone_caching_model(model)
    result = finetune_caching_model(tuned, chunks, targets, config,
                                    epochs=epochs, lr=lr)
    return tuned, result


class OnlineCachingTrainer:
    """Windowed incremental retraining from the live access stream.

    Rides inside a priority provider
    (:mod:`repro.serving.priorities`): :meth:`observe` feeds served
    blocks into a sliding window of the most recent ``window``
    accesses and reports when a retrain is due (every ``interval``
    observed accesses, once the window is full); :meth:`retrain` then

    1. relabels the window with the vectorized OPTgen
       (:func:`repro.core.labeling.label_live_window` at the same
       ``capacity * optgen_fraction`` budget as offline labeling),
    2. fine-tunes a **clone** of the current model on the relabeled
       chunks (:func:`finetune_caching_model` — the caller keeps
       serving from the original), and
    3. returns the tuned clone for the caller to swap in (a reference
       assignment, atomic under the GIL).

    In async mode the *cycle* (label + fine-tune + swap) runs on the
    provider's refresh worker, off the serving critical path, while
    :meth:`observe` is called from the serving thread for **every**
    served block — the refresh queue's thinning/drop-oldest shedding
    applies to inference refreshes only, never to the training window
    (a window fed only every k-th block would label a k-times-sparser
    stream than the one being served).  Window state is therefore
    guarded by a small lock: ``observe`` appends while the worker may
    concurrently snapshot :meth:`window_keys` inside :meth:`retrain`.
    """

    def __init__(self, encoder: FeatureEncoder, config: RecMGConfig,
                 buffer_capacity: int, interval: Optional[int] = None,
                 window: Optional[int] = None,
                 epochs: Optional[int] = None) -> None:
        self.encoder = encoder
        self.config = config
        self.buffer_capacity = int(buffer_capacity)
        self.interval = int(interval if interval is not None
                            else config.online_retrain_interval)
        self.window = int(window if window is not None
                          else config.online_retrain_window)
        self.epochs = int(epochs if epochs is not None
                          else config.online_retrain_epochs)
        if self.interval < 1:
            raise ValueError("retrain interval must be >= 1")
        if self.window < config.input_len:
            raise ValueError("retrain window must cover at least one "
                             "input chunk")
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        self._blocks: List[np.ndarray] = []
        self._held = 0      # accesses currently in the window
        self._since = 0     # accesses observed since the last retrain
        self._lock = threading.Lock()  # window state (see class doc)
        self.retrains = 0
        self.last_result: Optional[TrainResult] = None

    def observe(self, keys: np.ndarray) -> bool:
        """Feed one served block; returns True when a retrain is due
        (window full and ``interval`` accesses since the last one).
        Safe to call from the serving thread while a worker-side
        :meth:`retrain` is in flight."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return False
        with self._lock:
            self._blocks.append(keys)
            self._held += keys.size
            self._since += keys.size
            # Trim whole blocks from the head while the window stays
            # full.
            while self._blocks and (self._held - self._blocks[0].size
                                    >= self.window):
                self._held -= self._blocks[0].size
                self._blocks.pop(0)
            return (self._since >= self.interval
                    and self._held >= self.window)

    def window_keys(self) -> np.ndarray:
        """The current window's dense ids, oldest first (trimmed to
        exactly ``window`` accesses) — a consistent snapshot."""
        with self._lock:
            if not self._blocks:
                return np.empty(0, dtype=np.int64)
            keys = np.concatenate(self._blocks)
        return keys[-self.window:]

    def retrain(self, model: CachingModel) -> CachingModel:
        """Label the window, fine-tune a clone, return it (see class
        docstring).  Resets the retrain countdown."""
        from .labeling import window_targets

        with self._lock:
            self._since = 0
        keys = self.window_keys()
        targets = window_targets(keys, self.buffer_capacity, self.config)
        chunks = self.encoder.encode_dense_chunks(keys)
        tuned = clone_caching_model(model)
        self.last_result = finetune_caching_model(
            tuned, chunks, targets, self.config, epochs=self.epochs)
        self.retrains += 1
        return tuned


def caching_accuracy(model: CachingModel, chunks: EncodedChunks,
                     targets: np.ndarray,
                     sel: Optional[np.ndarray] = None) -> float:
    """Per-position binary accuracy against OPTgen labels."""
    if sel is None:
        sel = np.arange(len(chunks))
    predictions = model.predict(chunks, sel=sel)
    return float((predictions == (targets[sel] > 0.5)).mean())


# ----------------------------------------------------------------------
# Prefetch model
# ----------------------------------------------------------------------
def _chamfer_ce_loss(model: PrefetchModel, chunks: EncodedChunks,
                     sel_rows: np.ndarray, windows_hashed: np.ndarray,
                     config: RecMGConfig, alpha: Optional[float]) -> "Tensor":
    """Bidirectional Chamfer loss (Eq. 5) with cross-entropy distance.

    The Chamfer structure is kept verbatim — every output point is
    matched to its nearest evaluation-window point and vice versa — but
    the per-pair distance is the cross entropy between the output step's
    bucket distribution and the matched point's bucket.  The matching
    uses the (detached) expected codewords, so it is exactly the Eq. 4
    argmin; CE supplies a gradient that can commit to a bucket, which
    plain L1 on expected codewords cannot (it stalls at the codebook
    centroid).  ``alpha=None`` gives the forward-only ablation (Eq. 4),
    which collapses outputs, reproducing the paper's shortcut problem.
    """
    from ..nn import log_softmax

    logits = model.forward_logits(chunks, sel=sel_rows)    # (B, P, K)
    batch, steps, num_buckets = logits.shape
    codebook = model.target_table.data                      # (K, D)

    from ..nn import softmax as _softmax
    probs = _softmax(logits, axis=-1).data
    points = probs @ codebook                               # (B, P, D)
    targets = codebook[windows_hashed]                      # (B, W, D)
    dist = np.abs(points[:, :, None, :] - targets[:, None, :, :]).mean(axis=3)

    logp = log_softmax(logits.reshape(batch * steps, num_buckets), axis=-1)

    # Forward term: each output point claims its nearest window point.
    fwd_assign = np.argmin(dist, axis=2)                    # (B, P)
    fwd_rows = np.arange(batch * steps)
    fwd_labels = windows_hashed[np.arange(batch)[:, None],
                                fwd_assign].reshape(-1)
    fwd_loss = logp[fwd_rows, fwd_labels].mean() * -1.0
    if alpha is None:
        return fwd_loss

    # Reverse term: each window point trains its nearest output step.
    rev_assign = np.argmin(dist, axis=1)                    # (B, W)
    rev_rows = (np.arange(batch)[:, None] * steps + rev_assign).reshape(-1)
    rev_labels = windows_hashed.reshape(-1)
    rev_loss = logp[rev_rows, rev_labels].mean() * -1.0
    return fwd_loss * alpha + rev_loss * (1.0 - alpha)


def train_prefetch_model(model: PrefetchModel, chunks: EncodedChunks,
                         sel: np.ndarray, windows_norm: np.ndarray,
                         windows_dense: np.ndarray, encoder: FeatureEncoder,
                         config: RecMGConfig, loss_kind: str = "chamfer",
                         holdout: float = 0.15) -> TrainResult:
    """Train with the bidirectional Chamfer loss (or ablation variants).

    ``loss_kind``: ``"chamfer"`` (paper Eq. 5), ``"chamfer_forward"``
    (Eq. 4 only — exhibits the collapse shortcut), or ``"l2"`` (the
    Fig. 11 baseline; uses a truncated window equal to the output).
    """
    if loss_kind not in ("chamfer", "chamfer_forward", "l2"):
        raise ValueError(f"unknown loss kind {loss_kind!r}")
    rng = np.random.default_rng(config.seed + 7)
    n = min(len(sel), config.max_train_chunks)
    order = rng.permutation(n)
    cut = max(1, int(n * (1.0 - holdout)))
    train_rows, test_rows = order[:cut], order[cut:] if cut < n else order[:1]

    windows_hashed = windows_dense % config.hash_buckets
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    start = time.perf_counter()
    for _ in range(config.prefetch_epochs):
        rng.shuffle(train_rows)
        for lo in range(0, len(train_rows), config.batch_size):
            rows = train_rows[lo:lo + config.batch_size]
            if loss_kind == "chamfer":
                loss = _chamfer_ce_loss(model, chunks, sel[rows],
                                        windows_hashed[rows], config,
                                        alpha=config.alpha)
            elif loss_kind == "chamfer_forward":
                loss = _chamfer_ce_loss(model, chunks, sel[rows],
                                        windows_hashed[rows], config,
                                        alpha=None)
            else:
                outputs = model(chunks, sel=sel[rows])
                window = model.target_points(windows_hashed[rows])
                loss = l2_loss(outputs, window)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
    duration = time.perf_counter() - start
    correctness, _ = prefetch_metrics(model, chunks, sel[test_rows],
                                      windows_dense[test_rows], encoder)
    return TrainResult(losses=losses, duration_s=duration,
                       num_parameters=model.num_parameters(),
                       final_metric=correctness)


def prefetch_metrics(model: PrefetchModel, chunks: EncodedChunks,
                     sel: np.ndarray, windows_dense: np.ndarray,
                     encoder: FeatureEncoder,
                     tolerance: int = 0) -> Tuple[float, float]:
    """(correctness, coverage) of predicted indices vs evaluation windows.

    Correctness: fraction of predicted indices present in their window
    (within ``tolerance`` dense ids).  Coverage (Eq. 2): per-window
    unique overlap |out ∩ gt| / |gt|, averaged.
    """
    predictions = model.predict_indices(chunks, encoder, sel=sel)
    correct = 0
    total = 0
    coverage_sum = 0.0
    for row in range(len(sel)):
        window = windows_dense[row]
        window_set = set(int(w) for w in window)
        predicted = predictions[row]
        for value in predicted:
            total += 1
            if tolerance == 0:
                hit = int(value) in window_set
            else:
                hit = bool(np.any(np.abs(window - value) <= tolerance))
            if hit:
                correct += 1
        overlap = len(set(int(v) for v in predicted) & window_set)
        coverage_sum += overlap / max(1, len(window_set))
    correctness = correct / total if total else 0.0
    coverage = coverage_sum / max(1, len(sel))
    return correctness, coverage


def output_collapse_ratio(model: PrefetchModel, chunks: EncodedChunks,
                          sel: np.ndarray, encoder: FeatureEncoder) -> float:
    """Fraction of chunks whose predicted indices are all identical.

    The paper's motivation for the bidirectional Chamfer term: with the
    forward-only loss "the prediction result tends to have the same
    value in all elements in PO".
    """
    predictions = model.predict_indices(chunks, encoder, sel=sel)
    same = np.all(predictions == predictions[:, :1], axis=1)
    return float(same.mean())
