"""RecMG configuration (paper §VII-A default configuration)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class RecMGConfig:
    """Hyperparameters for the RecMG caching + prefetch models.

    Defaults follow the paper: input sequences of 15 accesses, prefetch
    output sequences of 5, evaluation window 15 (3x the output length),
    one LSTM stack for the caching model, two for the prefetch model,
    Chamfer alpha 0.7, ``eviction_speed`` 4.
    """

    # Sequence geometry.
    input_len: int = 15
    output_len: int = 5
    window_ratio: int = 3

    # Model sizes (kept small: the paper's models are 37K/74K params and
    # must run on spare CPU cycles).
    embed_dim: int = 16
    hidden: int = 48
    hash_buckets: int = 2048
    caching_stacks: int = 1
    prefetch_stacks: int = 2

    # Training.
    alpha: float = 0.7
    learning_rate: float = 1e-2
    caching_epochs: int = 3
    prefetch_epochs: int = 6
    batch_size: int = 32
    max_train_chunks: int = 1500
    grad_clip: float = 5.0
    seed: int = 0

    # Deployment.
    eviction_speed: int = 4
    #: Fraction of the GPU buffer given to optgen when labeling, leaving
    #: headroom for prefetched vectors (paper: 80%).
    optgen_fraction: float = 0.8
    #: Cap on prefetch insertions per chunk.
    max_prefetch_per_chunk: int = 5
    #: Snapping radius of the index decoder, as a fraction of the dense
    #: vocabulary (see :class:`repro.core.prefetch_model.IndexDecoder`).
    decode_radius_frac: float = 0.005
    #: GPU-buffer backend for the online manager: ``"fast"`` (exact,
    #: lazy-heap), ``"reference"`` (exact, O(n) audit loop) or
    #: ``"clock"`` (approximate array-backed CLOCK with batched
    #: eviction — the throughput-serving choice).  See
    #: :mod:`repro.cache.buffer`.
    buffer_impl: str = "fast"
    #: Number of buffer shards the dense id universe is partitioned
    #: across (1 = the bare backend; > 1 requires a fitted encoder so
    #: the manager can hand the routers a ``key_space``).  See
    #: :mod:`repro.cache.sharding`.
    num_shards: int = 1
    #: Shard routing policy: ``"contiguous"`` (range partition) or
    #: ``"modulo"`` (striping).  See
    #: :data:`repro.cache.sharding.SHARD_POLICIES`.
    shard_policy: str = "contiguous"
    #: Per-shard capacity weights (``None`` = uniform split).  One
    #: positive weight per shard; capacity splits proportionally by
    #: largest-remainder apportionment with at least one slot per shard
    #: — the skew-matched split for hot-shard workloads.  Requires
    #: ``num_shards > 1``.  See
    #: :func:`repro.cache.sharding.split_capacity`.
    shard_weights: tuple[float, ...] | None = None
    #: Demand-serving dispatch: ``"serial"`` (shard loop inline on the
    #: calling thread) or ``"threads"`` (per-shard worker pool;
    #: requires ``num_shards > 1``).  Bit-identical decisions either
    #: way — see :mod:`repro.serving` and
    #: :data:`repro.core.manager.CONCURRENCY_MODES`.
    concurrency: str = "serial"
    #: Worker threads for ``concurrency="threads"`` (``None`` = one per
    #: shard; smaller values time-share shards over fewer workers).
    num_workers: int | None = None
    #: How the caching model's priorities reach the serving engines:
    #: ``"none"`` (model-free serving, bit-identical to the
    #: provider-free code), ``"sync"`` (batched inference on the
    #: serving thread, deterministic) or ``"async"`` (background
    #: refresh of a dense bit table; serving reads possibly-stale bits
    #: without blocking).  See :mod:`repro.serving.priorities`.
    priority_mode: str = "none"
    #: Async mode: refresh every k-th served block (1 = every block;
    #: larger values trade staleness for inference cost).
    priority_refresh_blocks: int = 1
    #: Async mode: bound on queued refresh blocks.  A full queue drops
    #: the *oldest* pending block (serving never blocks), which also
    #: bounds staleness at ``pending_max + 1`` blocks.
    priority_pending_max: int = 8
    #: Lift-guard phase length in served blocks (0 = guard off).  When
    #: on, the manager runs an online A/B over guided vs model-free
    #: phases (:class:`repro.serving.priorities.LiftGuard`) and
    #: withholds the provider's bits while the measured trailing
    #: hit-rate lift is negative — model guidance can degrade to
    #: model-free, never below it.  Off by default: the guard's
    #: control phases cost a slice of positive lift, and its
    #: measurement feedback is excluded from the pipelined==barrier
    #: bit-identity contract.
    priority_lift_guard: int = 0
    #: Lift-guard trip/untrip hysteresis margin (absolute hit-rate
    #: difference; the guard trips when guided < control - margin and
    #: untrips on the symmetric recovery).
    priority_lift_margin: float = 0.0
    #: Online retraining cadence in observed accesses (0 = off).  When
    #: on, the provider relabels its sliding window with the vectorized
    #: OPTgen, fine-tunes a clone and swaps it in atomically — on the
    #: refresh worker in async mode.  See
    #: :class:`repro.core.training.OnlineCachingTrainer`.
    online_retrain_interval: int = 0
    #: Sliding-window length (accesses) the retrainer labels and
    #: fine-tunes on.
    online_retrain_window: int = 2048
    #: Fine-tune epochs per retrain cycle.
    online_retrain_epochs: int = 1
    #: Elastic shard-rebalancing cadence in served accesses (0 = off;
    #: requires ``num_shards > 1`` when on).  Every ``interval``
    #: accesses the manager compares the per-shard traffic EWMAs it
    #: accumulates at the gather against the current capacity split
    #: and, past ``rebalance_threshold``, calls
    #: :meth:`repro.cache.sharding.ShardedBuffer.rebalance` with the
    #: EWMA weights — at a block boundary, after a full worker
    #: drain/barrier under ``concurrency="threads"``.
    rebalance_interval: int = 0
    #: Imbalance trigger for the online rebalancer: rebalance only when
    #: ``max_s |traffic_share_s - capacity_share_s|`` exceeds this.
    rebalance_threshold: float = 0.1

    @property
    def eval_window(self) -> int:
        """Evaluation window length |W| = ratio x |PO| (paper Fig. 12)."""
        return self.window_ratio * self.output_len

    def __post_init__(self) -> None:
        if self.input_len < 1 or self.output_len < 1:
            raise ValueError("sequence lengths must be positive")
        if self.output_len > self.input_len:
            raise ValueError("output length must not exceed input length")
        if self.window_ratio < 1:
            raise ValueError("window_ratio must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        if not 0.0 < self.optgen_fraction <= 1.0:
            raise ValueError("optgen_fraction must lie in (0, 1]")
        if self.eviction_speed < 1:
            raise ValueError("eviction_speed must be >= 1")
        from ..cache.buffer import BUFFER_IMPLS
        from ..cache.sharding import SHARD_POLICIES

        if self.buffer_impl not in BUFFER_IMPLS:
            raise ValueError(
                f"buffer_impl must be one of {sorted(BUFFER_IMPLS)}, "
                f"got {self.buffer_impl!r}")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"shard_policy must be one of {sorted(SHARD_POLICIES)}, "
                f"got {self.shard_policy!r}")
        if self.shard_weights is not None:
            if self.num_shards < 2:
                raise ValueError(
                    "shard_weights requires num_shards > 1 (there is "
                    "nothing to weight on a single shard)")
            weights = tuple(float(w) for w in self.shard_weights)
            if len(weights) != self.num_shards:
                raise ValueError(
                    f"shard_weights must provide one weight per shard "
                    f"(expected {self.num_shards}, got {len(weights)})")
            if not all(math.isfinite(w) and w > 0.0 for w in weights):
                raise ValueError(
                    "shard_weights must be positive and finite")
        if self.concurrency not in ("serial", "threads"):
            raise ValueError(
                "concurrency must be one of ('serial', 'threads'), "
                f"got {self.concurrency!r}")
        if self.concurrency == "threads" and self.num_shards < 2:
            raise ValueError(
                "concurrency='threads' dispatches per-shard workers "
                "and requires num_shards > 1")
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be >= 1 (or None)")
        from ..serving.priorities import PRIORITY_MODES

        if self.priority_mode not in PRIORITY_MODES:
            raise ValueError(
                f"priority_mode must be one of {PRIORITY_MODES}, "
                f"got {self.priority_mode!r}")
        if self.priority_refresh_blocks < 1:
            raise ValueError("priority_refresh_blocks must be >= 1")
        if self.priority_pending_max < 1:
            raise ValueError("priority_pending_max must be >= 1")
        if self.priority_lift_guard < 0:
            raise ValueError("priority_lift_guard must be >= 0 "
                             "(0 disables the lift guard)")
        if self.priority_lift_margin < 0:
            raise ValueError("priority_lift_margin must be >= 0")
        if self.online_retrain_interval < 0:
            raise ValueError("online_retrain_interval must be >= 0 "
                             "(0 disables online retraining)")
        if self.online_retrain_window < self.input_len:
            raise ValueError("online_retrain_window must cover at least "
                             "one input chunk")
        if self.online_retrain_epochs < 1:
            raise ValueError("online_retrain_epochs must be >= 1")
        if self.rebalance_interval < 0:
            raise ValueError("rebalance_interval must be >= 0 "
                             "(0 disables online rebalancing)")
        if self.rebalance_interval and self.num_shards < 2:
            raise ValueError("rebalance_interval requires num_shards > 1 "
                             "(there is nothing to rebalance on a "
                             "single shard)")
        if not (math.isfinite(self.rebalance_threshold)
                and self.rebalance_threshold >= 0.0):
            raise ValueError(
                "rebalance_threshold must be finite and >= 0")
