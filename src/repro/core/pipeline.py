"""CPU-side serving simulation: thread scaling and pipelined execution.

The paper deploys both models on spare CPU cores (§VI-C) with three
optimizations: pipelined CPU/GPU execution with relaxed synchronization,
one-thread-per-request parallelism (Fig. 7 shows near-linear scaling),
and vectorization.  The hardware is simulated here:

* :func:`simulate_thread_throughput` — a work-conserving thread pool
  with per-request dispatch overhead and a mild memory-bandwidth
  contention term, reproducing Fig. 7's near-linear curve.
* :class:`PipelineSimulator` — the relaxed pipeline of Fig. 6: the GPU
  never waits for the CPU models; if CPU inference for batch ``i+1`` is
  still running when the GPU finishes batch ``i``, the update is skipped
  and the CPU moves on to batch ``i+2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def simulate_thread_throughput(num_threads: int, num_requests: int = 4096,
                               service_time_us: float = 800.0,
                               dispatch_overhead_us: float = 2.0,
                               contention_per_thread: float = 0.004
                               ) -> float:
    """Requests/second served by ``num_threads`` one-request-per-thread
    workers (the paper's chosen parallelization).

    Dispatch is serialized (one enqueue at a time); service is parallel
    but slows slightly per extra thread (shared-cache/bandwidth
    contention), so scaling is near-linear with a gentle roll-off —
    the Fig. 7 shape.
    """
    if num_threads < 1:
        raise ValueError("need at least one thread")
    effective_service = service_time_us * (
        1.0 + contention_per_thread * (num_threads - 1)
    )
    dispatch_total = num_requests * dispatch_overhead_us
    service_total = num_requests * effective_service / num_threads
    total_us = dispatch_total + service_total
    return num_requests / (total_us * 1e-6)


@dataclass
class PipelineResult:
    """Outcome of a pipelined CPU/GPU run."""

    total_time_ms: float
    serialized_time_ms: float
    skipped_model_updates: int

    @property
    def speedup(self) -> float:
        return self.serialized_time_ms / self.total_time_ms if self.total_time_ms else 1.0


class PipelineSimulator:
    """Relaxed two-stage pipeline: CPU models for batch i+1 overlap GPU
    inference for batch i; the GPU never blocks on the CPU."""

    def __init__(self, cpu_skippable: bool = True) -> None:
        self.cpu_skippable = cpu_skippable

    def run(self, gpu_times_ms: Sequence[float],
            cpu_times_ms: Sequence[float]) -> PipelineResult:
        gpu_times = list(gpu_times_ms)
        cpu_times = list(cpu_times_ms)
        if len(gpu_times) != len(cpu_times):
            raise ValueError("need one CPU time per GPU batch")
        gpu_clock = 0.0
        cpu_free = 0.0
        skipped = 0
        for i in range(len(gpu_times)):
            # CPU inference for batch i was launched when batch i-1's
            # indices arrived; if still busy, this batch's buffer update
            # is skipped (stale priorities — harmless per the paper).
            if self.cpu_skippable and cpu_free > gpu_clock:
                skipped += 1
            else:
                cpu_free = max(cpu_free, gpu_clock) + cpu_times[i]
            gpu_clock += gpu_times[i]
        serialized = float(np.sum(gpu_times) + np.sum(cpu_times))
        return PipelineResult(
            total_time_ms=gpu_clock,
            serialized_time_ms=serialized,
            skipped_model_updates=skipped,
        )
