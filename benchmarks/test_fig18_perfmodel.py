"""Fig. 18: linear performance model — inference time vs hit rate.

Paper shape: inference time is linear in the hit rate (RMSE < 1.7% of
the mean); validation points from actual LRU and RecMG runs land near
the fitted line.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.cache import LRUCache
from repro.dlrm import InferenceEngine, ManagerClassifier, calibrate


def test_fig18(benchmark, dataset0_full, trained_system):
    system, capacity = trained_system
    _, test = dataset0_full.split(0.6)
    engine = InferenceEngine(accesses_per_batch=2048)

    model, reports = benchmark.pedantic(
        calibrate, args=(engine, test),
        kwargs={"hit_rates": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)},
        rounds=1, iterations=1,
    )
    rows = [[f"{r.hit_rate:.0%}", r.mean_batch_ms,
             model.predict(r.hit_rate)] for r in reports]
    print()
    print(ascii_table(
        ["hit rate", "measured (ms)", "model (ms)"],
        rows, title="Fig. 18: performance model calibration",
    ))
    mean_time = float(np.mean([r.mean_batch_ms for r in reports]))
    print(f"slope={model.slope:.2f} ms/hit-rate  "
          f"RMSE={model.rmse_ms:.3f} ms ({model.rmse_ms / mean_time:.2%})")

    # Validation with real policies (paper: < 3.6% deviation).
    lru_report = engine.run(test, LRUCache(capacity))
    recmg_report = engine.run(test, ManagerClassifier(
        system.deploy(capacity), test))
    for label, report in (("LRU", lru_report), ("RecMG", recmg_report)):
        predicted = model.predict(report.hit_rate)
        deviation = abs(predicted - report.mean_batch_ms) / report.mean_batch_ms
        print(f"validation {label}: measured {report.mean_batch_ms:.2f} ms, "
              f"model {predicted:.2f} ms, deviation {deviation:.2%}")
        assert deviation < 0.10

    assert model.slope < 0
    assert model.rmse_ms / mean_time < 0.05
