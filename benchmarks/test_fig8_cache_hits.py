"""Fig. 8: cache hits — LRU-32way / LFU / LRU-full / optgen / RecMG(CM).

Paper shape: optgen ~67% more hits than LRU/LFU; the caching model
recovers a large share of that gap (paper: +38% hits vs LRU, 83% acc).
"""


from repro.analysis import ascii_table
from repro.cache import (
    LFUCache, LRUCache, SetAssociativeCache, capacity_from_fraction,
    run_optgen, simulate,
)


def test_fig8(benchmark, datasets, per_dataset_systems):
    rows = []
    ratios = []
    for name, trace in datasets.items():
        system, capacity = per_dataset_systems[name]
        _, test = trace.split(0.6)
        capacity = capacity_from_fraction(trace, 0.20)

        lru32 = SetAssociativeCache(capacity, ways=32)
        simulate(lru32, test)
        lfu = LFUCache(capacity)
        simulate(lfu, test)
        lru_full = LRUCache(capacity)
        simulate(lru_full, test)
        optgen = run_optgen(test, capacity)
        cm = system.evaluate(test, capacity=capacity,
                             use_prefetch_model=False)
        recmg_hits = cm.breakdown.cache_hits + cm.breakdown.prefetch_hits
        rows.append([
            name, lru32.stats.hits, lfu.stats.hits, lru_full.stats.hits,
            optgen.stats.hits, recmg_hits,
            f"{system.report.caching_accuracy:.0%}",
        ])
        ratios.append(recmg_hits / max(1, lru_full.stats.hits))
    print()
    print(ascii_table(
        ["dataset", "LRU-32way", "LFU", "LRU-full", "optgen",
         "RecMG(CM)", "CM accuracy"],
        rows, title="Fig. 8: cache hits by policy",
    ))
    # Shape: optgen dominates everything; RecMG(CM) beats plain LRU on
    # average across datasets.
    for row in rows:
        assert row[4] >= max(row[1], row[2], row[3])
    assert sum(ratios) / len(ratios) > 1.0

    name = list(datasets)[0]
    _, test = datasets[name].split(0.6)
    capacity = capacity_from_fraction(datasets[name], 0.20)
    benchmark.pedantic(
        lambda: simulate(LRUCache(capacity), test), rounds=1, iterations=1
    )
