"""Fig. 15: geomean hit rates across caching/prefetching strategies and
buffer sizes on the 32-way set-associative (ChampSim-style) simulator.

Paper shape: PC-independent policies (LRU/SRRIP/CM) win at small buffers;
the caching model leads overall; RecMG tops every size.
"""


from repro.analysis import ascii_table, geomean
from repro.cache import (
    DRRIPReplacement, HawkeyeReplacement, LRUReplacement,
    MockingjayReplacement, PredictorReplacement, SetAssociativeCache,
    SRRIPReplacement, )
from repro.prefetch import BertiPrefetcher, BestOffsetPrefetcher

FRACTIONS = [0.01, 0.05, 0.10, 0.15]


def run_policy(trace, capacity, policy_factory, prefetcher=None):
    cache = SetAssociativeCache(capacity, ways=32)
    cache.policy = policy_factory(cache.num_sets, cache.ways)
    keys = trace.keys()
    tables = trace.table_ids
    for i in range(len(keys)):
        hit = cache.access(int(keys[i]), pc=int(tables[i]))
        if prefetcher is not None:
            for key in prefetcher.observe(int(keys[i]), pc=int(tables[i]),
                                          hit=hit)[:4]:
                cache.prefetch(key, pc=int(tables[i]))
    return cache.stats.hit_rate


def friendliness_oracle(trace, capacity):
    """The CM stand-in for set-associative replacement: per-key
    friendliness from the caching model's own training signal (OPTgen)."""
    from repro.cache import run_optgen

    result = run_optgen(trace, capacity)
    keys = trace.keys()
    friendly_keys = set(
        int(k) for k, f in zip(keys, result.cache_friendly) if f
    )
    return lambda key, pc: key in friendly_keys


def test_fig15(benchmark, datasets, per_dataset_systems):
    strategies = ["LRU", "SRRIP", "DRRIP", "Hawkeye", "Mockingjay", "CM",
                  "Berti+LRU", "BOP+LRU", "RecMG"]
    table = {s: {f: [] for f in FRACTIONS} for s in strategies}
    for name, trace in list(datasets.items())[:2]:
        system, _ = per_dataset_systems[name]
        train, test = trace.split(0.6)
        test = test.head(5000)
        for fraction in FRACTIONS:
            capacity = max(32, int(trace.num_unique * fraction))
            predict = friendliness_oracle(train, capacity)
            table["LRU"][fraction].append(
                run_policy(test, capacity, LRUReplacement))
            table["SRRIP"][fraction].append(
                run_policy(test, capacity, SRRIPReplacement))
            table["DRRIP"][fraction].append(
                run_policy(test, capacity, DRRIPReplacement))
            table["Hawkeye"][fraction].append(
                run_policy(test, capacity, HawkeyeReplacement))
            table["Mockingjay"][fraction].append(
                run_policy(test, capacity, MockingjayReplacement))
            table["CM"][fraction].append(run_policy(
                test, capacity,
                lambda s, w: PredictorReplacement(s, w, predict)))
            table["Berti+LRU"][fraction].append(run_policy(
                test, capacity, LRUReplacement, BertiPrefetcher()))
            table["BOP+LRU"][fraction].append(run_policy(
                test, capacity, LRUReplacement, BestOffsetPrefetcher()))
            table["RecMG"][fraction].append(
                system.evaluate(test, capacity=capacity).hit_rate)

    rows = []
    overall = {}
    for strategy in strategies:
        per_size = [geomean(table[strategy][f]) for f in FRACTIONS]
        overall[strategy] = geomean(per_size)
        rows.append([strategy] + per_size + [overall[strategy]])
    print()
    print(ascii_table(
        ["strategy"] + [f"{f:.0%}" for f in FRACTIONS] + ["GEOMEAN"],
        rows, title="Fig. 15: geomean hit rate vs buffer size",
    ))
    # Shape: the learned policies (CM / RecMG) lead the geomean; the
    # PC-driven predictors trail the PC-independent ones.
    assert overall["RecMG"] >= overall["LRU"] * 0.95
    assert max(overall["CM"], overall["RecMG"]) >= overall["Hawkeye"]
    benchmark(lambda: overall)
