"""Extra ablation (paper §VI-B): the ``eviction_speed`` knob.

The paper fixes eviction_speed = 4 (inspired by RRIP) and notes it
"does not affect the accuracy of the caching and prefetching models,
but it influences the overall system hit rate".  We sweep it at
deployment time with the *same* trained models.
"""

from dataclasses import replace


from repro.analysis import ascii_table
from repro.core import RecMGManager

SPEEDS = [1, 2, 4, 8]


def test_eviction_speed(benchmark, dataset0_full, trained_system):
    system, capacity = trained_system
    _, test = dataset0_full.split(0.6)
    rows = []
    rates = {}
    for speed in SPEEDS:
        config = replace(system.config, eviction_speed=speed)
        manager = RecMGManager(capacity, system.encoder, config,
                               caching_model=system.caching_model,
                               prefetch_model=system.prefetch_model)
        stats = manager.run(test)
        rates[speed] = stats.hit_rate
        rows.append([speed, stats.hit_rate,
                     stats.breakdown.fractions()["on_demand"]])
    print()
    print(ascii_table(
        ["eviction_speed", "hit rate", "on-demand fraction"],
        rows, title="Ablation: eviction_speed sweep (paper default 4)",
    ))
    # The knob moves hit rate mildly; no configuration should collapse.
    spread = max(rates.values()) - min(rates.values())
    assert spread < 0.25
    assert min(rates.values()) > 0.2
    benchmark(lambda: rates)
