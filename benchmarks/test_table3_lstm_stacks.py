"""Table III: sensitivity to the number of LSTM stacks.

Paper shape: parameters and training time grow with stacks; accuracy
improves modestly for the caching model and more for the prefetch model.
RecMG's default: 1 caching stack, 2 prefetch stacks.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import ascii_table
from repro.cache import capacity_from_fraction
from repro.core import (
    CachingModel, FeatureEncoder, PrefetchModel, build_labels,
    caching_targets, prefetch_targets, train_caching_model,
    train_prefetch_model,
)
from repro.core.prefetch_model import BucketDecoder


def test_table3(benchmark, datasets, bench_config):
    trace, _ = datasets["dataset0"].split(0.6)
    config = replace(bench_config, caching_epochs=1, prefetch_epochs=1,
                     max_train_chunks=250)
    encoder = FeatureEncoder(config).fit(trace)
    capacity = capacity_from_fraction(trace, 0.20)
    labels = build_labels(trace, capacity, config, encoder)
    chunks = encoder.encode_chunks(trace)
    targets = caching_targets(chunks, labels)
    sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
    miss_dense = labels.dense_ids[labels.miss_positions]

    rows = []
    caching_params = []
    prefetch_params = []
    for stacks in (1, 2, 3):
        c_config = replace(config, caching_stacks=stacks)
        caching = CachingModel(c_config, encoder.num_tables,
                               rng=np.random.default_rng(0))
        c_result = train_caching_model(caching, chunks, targets, c_config)

        p_config = replace(config, prefetch_stacks=stacks)
        prefetch = PrefetchModel(p_config, encoder.num_tables,
                                 rng=np.random.default_rng(0))
        prefetch.set_decoder(BucketDecoder.from_miss_ids(
            miss_dense, p_config.hash_buckets))
        p_result = train_prefetch_model(prefetch, chunks, sel, norm, dense,
                                        encoder, p_config)
        caching_params.append(c_result.num_parameters)
        prefetch_params.append(p_result.num_parameters)
        rows.append([
            stacks,
            f"{c_result.duration_s:.1f}s", c_result.num_parameters,
            f"{c_result.final_metric:.0%}",
            f"{p_result.duration_s:.1f}s", p_result.num_parameters,
            f"{p_result.final_metric:.1%}",
        ])
    print()
    print(ascii_table(
        ["#stacks", "CM train", "CM params", "CM acc",
         "PM train", "PM params", "PM corr"],
        rows, title="Table III: LSTM-stack sensitivity",
    ))
    assert caching_params[0] < caching_params[1] < caching_params[2]
    assert prefetch_params[0] < prefetch_params[1] < prefetch_params[2]
    benchmark(lambda: rows)
