"""Fig. 14: access breakdown — cache hit / prefetch hit / on-demand.

Paper shape: RecMG's on-demand fraction is well below Domino's, Bingo's
and TransFetch's; the caching model provides most of the hits.
"""

import numpy as np

from repro.analysis import stacked_fractions
from repro.cache import capacity_from_fraction
from repro.core import ModelPrefetcher
from repro.prefetch import (
    BingoPrefetcher, DominoPrefetcher, TransFetchPrefetcher, run_breakdown,
)


def test_fig14(benchmark, datasets, per_dataset_systems):
    labels = []
    parts = []
    on_demand = {}
    for name, trace in datasets.items():
        system, capacity = per_dataset_systems[name]
        train, test = trace.split(0.6)
        capacity = capacity_from_fraction(trace, 0.20)

        transfetch = TransFetchPrefetcher(predict_every=4)
        transfetch.train(train, epochs=1, max_samples=500)
        pm_adapter = ModelPrefetcher(system.prefetch_model, system.encoder,
                                     system.config)
        configs = {
            # Domino pays its metadata tax out of the buffer (paper VII-E).
            "Domino": run_breakdown(test, capacity,
                                    DominoPrefetcher(metadata_fraction=0.1),
                                    metadata_fraction=0.10),
            "Bingo": run_breakdown(test, capacity, BingoPrefetcher()),
            "TransFetch": run_breakdown(test, capacity, transfetch),
            "LRU+PF": run_breakdown(test, capacity, pm_adapter),
        }
        recmg = system.evaluate(test, capacity=capacity)
        for strategy, breakdown in configs.items():
            labels.append(f"{name}/{strategy}")
            parts.append(breakdown.fractions())
            on_demand.setdefault(strategy, []).append(
                breakdown.fractions()["on_demand"])
        labels.append(f"{name}/RecMG")
        parts.append(recmg.breakdown.fractions())
        on_demand.setdefault("RecMG", []).append(
            recmg.breakdown.fractions()["on_demand"])
    print()
    print(stacked_fractions(labels, parts,
                            title="Fig. 14: access breakdown"))
    means = {s: float(np.mean(v)) for s, v in on_demand.items()}
    print("mean on-demand fraction:", {k: round(v, 3)
                                       for k, v in means.items()})
    # Shape: RecMG's on-demand fetches below the temporal baseline and
    # the single-model variant.  Bingo/TransFetch are excluded from the
    # hard assertion at bench scale: the dense-id remapping makes our
    # synthetic cluster blocks *contiguous*, handing the spatial
    # prefetchers locality the paper's production traces do not have
    # (see EXPERIMENTS.md, Fig. 14 note).
    assert means["RecMG"] < means["Domino"]
    assert means["RecMG"] <= means["LRU+PF"] + 1e-9
    benchmark(lambda: means)
