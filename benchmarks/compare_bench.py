#!/usr/bin/env python
"""Hot-path regression check: freshly emitted vs committed baseline.

CI runs the perf benches with ``--perf-budget 0`` (no wall-clock
assertions — shared runners are noisy), then calls this script to
compare the freshly written ``BENCH_hotpaths.json`` against the
baseline committed at ``HEAD``.  Raw accesses/sec are machine-bound
and meaningless across runners, so the comparison uses each hot path's
**speedup** (vectorized engine vs its reference engine, both measured
in the same process on the same machine) — a dimensionless ratio that
survives runner heterogeneity.  Only entries recorded with
``gated=True`` participate: informational parity entries (e.g. the
single-capacity LRU breakdown, committed at ~1x) would flake on noisy
shared runners where two near-equal engines can easily time 30% apart.
A gated hot path whose fresh speedup falls more than
``--max-regression`` (default 30%) below the committed one fails the
build; so does a gated hot path that disappears from the fresh run (a
silently dropped gate reads as a pass otherwise).

PRs that legitimately change a hot path's profile update the committed
``BENCH_hotpaths.json`` in the same commit, which rebaselines the
check.

Usage::

    python benchmarks/compare_bench.py BASELINE FRESH [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_speedups(path: str) -> dict:
    """Speedup per *gated* hot path (see module docstring).

    Only ``speedup`` and ``gated`` matter; every other metric field an
    entry carries (hit rates, latency percentiles, queue/in-flight
    depth stats, shard utilization, ...) is deliberately ignored, so
    entries may rename, add or drop such fields across PRs without
    tripping the comparison.  What is *not* tolerated is a gated entry
    vanishing from the fresh run — that check lives in :func:`main`
    and keys on the entry name alone.
    """
    with open(path) as handle:
        payload = json.load(handle)
    return {name: entry["speedup"]
            for name, entry in payload.get("hot_paths", {}).items()
            if isinstance(entry, dict)
            and "speedup" in entry and entry.get("gated")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_hotpaths.json")
    parser.add_argument("fresh", help="freshly emitted BENCH_hotpaths.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum allowed relative speedup drop per "
                             "hot path (default 0.30 = 30%%)")
    args = parser.parse_args(argv)

    baseline = load_speedups(args.baseline)
    fresh = load_speedups(args.fresh)
    floor = 1.0 - args.max_regression
    failures = []
    for name in sorted(baseline):
        committed = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: gated hot path missing from the "
                            f"fresh run (committed speedup {committed:.2f}x)")
            continue
        measured = fresh[name]
        ratio = measured / committed
        status = "OK " if ratio >= floor else "FAIL"
        print(f"{status} {name}: committed {committed:6.2f}x, "
              f"fresh {measured:6.2f}x ({ratio:.0%} of baseline)")
        if ratio < floor:
            failures.append(
                f"{name}: speedup regressed to {measured:.2f}x from the "
                f"committed {committed:.2f}x "
                f"(> {args.max_regression:.0%} drop)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"NEW {name}: {fresh[name]:.2f}x (not in baseline — commit "
              f"the fresh BENCH_hotpaths.json to start gating it)")
    if failures:
        print("\nHot-path regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nAll {len(baseline)} gated hot paths within "
          f"{args.max_regression:.0%} of the committed baseline.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
