#!/usr/bin/env python
"""Hot-path regression check: freshly emitted vs committed baseline.

CI runs the perf benches with ``--perf-budget 0`` (no wall-clock
assertions — shared runners are noisy), then calls this script to
compare the freshly written ``BENCH_hotpaths.json`` against the
baseline committed at ``HEAD``.  Raw accesses/sec are machine-bound
and meaningless across runners, so the comparison uses each hot path's
**speedup** (vectorized engine vs its reference engine, both measured
in the same process on the same machine) — a dimensionless ratio that
survives runner heterogeneity.  Only entries recorded with
``gated=True`` participate: informational parity entries (e.g. the
single-capacity LRU breakdown, committed at ~1x) would flake on noisy
shared runners where two near-equal engines can easily time 30% apart.
A gated hot path whose fresh speedup falls more than
``--max-regression`` (default 30%) below the committed one fails the
build; so does a gated hot path that disappears from the fresh run (a
silently dropped gate reads as a pass otherwise).

Gated entries that carry a ``hit_rate_lift`` instead of a ``speedup``
(the model-guided serving scenarios) gate on the *lift*: a hit-rate
lift is a decision metric — deterministic on a fixed seed, immune to
runner noise — so the contract is strict: a committed **positive**
lift must stay positive in the fresh run (the model may not silently
stop helping), and the entry may not vanish.  Committed non-positive
lifts never gate (a scenario recorded while the model underperforms
must not lock that in).

PRs that legitimately change a hot path's profile update the committed
``BENCH_hotpaths.json`` in the same commit, which rebaselines the
check.

Usage::

    python benchmarks/compare_bench.py BASELINE FRESH [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_speedups(path: str) -> dict:
    """Speedup per *gated* hot path (see module docstring).

    Only ``speedup`` and ``gated`` matter; every other metric field an
    entry carries (hit rates, latency percentiles, queue/in-flight
    depth stats, shard utilization, ...) is deliberately ignored, so
    entries may rename, add or drop such fields across PRs without
    tripping the comparison.  What is *not* tolerated is a gated entry
    vanishing from the fresh run — that check lives in :func:`main`
    and keys on the entry name alone.
    """
    with open(path) as handle:
        payload = json.load(handle)
    return {name: entry["speedup"]
            for name, entry in payload.get("hot_paths", {}).items()
            if isinstance(entry, dict)
            and "speedup" in entry and entry.get("gated")}


def load_lifts(path: str) -> dict:
    """Hit-rate lift per *gated* lift entry (see module docstring).

    Disjoint from :func:`load_speedups` by construction: lift-gated
    entries are recorded without a reference engine, so they carry no
    ``speedup`` key and never trip the speedup comparison; conversely
    an entry with both keys gates on both axes independently.
    """
    with open(path) as handle:
        payload = json.load(handle)
    return {name: entry["hit_rate_lift"]
            for name, entry in payload.get("hot_paths", {}).items()
            if isinstance(entry, dict)
            and "hit_rate_lift" in entry and entry.get("gated")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_hotpaths.json")
    parser.add_argument("fresh", help="freshly emitted BENCH_hotpaths.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum allowed relative speedup drop per "
                             "hot path (default 0.30 = 30%%)")
    args = parser.parse_args(argv)

    baseline = load_speedups(args.baseline)
    fresh = load_speedups(args.fresh)
    floor = 1.0 - args.max_regression
    failures = []
    for name in sorted(baseline):
        committed = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: gated hot path missing from the "
                            f"fresh run (committed speedup {committed:.2f}x)")
            continue
        measured = fresh[name]
        ratio = measured / committed
        status = "OK " if ratio >= floor else "FAIL"
        print(f"{status} {name}: committed {committed:6.2f}x, "
              f"fresh {measured:6.2f}x ({ratio:.0%} of baseline)")
        if ratio < floor:
            failures.append(
                f"{name}: speedup regressed to {measured:.2f}x from the "
                f"committed {committed:.2f}x "
                f"(> {args.max_regression:.0%} drop)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"NEW {name}: {fresh[name]:.2f}x (not in baseline — commit "
              f"the fresh BENCH_hotpaths.json to start gating it)")

    baseline_lifts = load_lifts(args.baseline)
    fresh_lifts = load_lifts(args.fresh)
    for name in sorted(baseline_lifts):
        committed = baseline_lifts[name]
        if committed <= 0:
            # Never lock in an underperforming model.
            print(f"SKIP {name}: committed lift {committed:+.4f} is not "
                  f"positive — not gated")
            continue
        if name not in fresh_lifts:
            failures.append(
                f"{name}: lift-gated entry missing from the fresh run "
                f"(committed lift {committed:+.4f})")
            continue
        measured = fresh_lifts[name]
        status = "OK " if measured > 0 else "FAIL"
        print(f"{status} {name}: committed lift {committed:+.4f}, "
              f"fresh {measured:+.4f}")
        if measured <= 0:
            failures.append(
                f"{name}: committed hit-rate lift {committed:+.4f} "
                f"vanished (fresh {measured:+.4f}) — the model stopped "
                f"beating model-free serving")
    for name in sorted(set(fresh_lifts) - set(baseline_lifts)):
        print(f"NEW {name}: lift {fresh_lifts[name]:+.4f} (not in baseline "
              f"— commit the fresh BENCH_hotpaths.json to start gating it)")
    if failures:
        print("\nHot-path regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nAll {len(baseline)} gated hot paths within "
          f"{args.max_regression:.0%} of the committed baseline; "
          f"{len(baseline_lifts)} lift-gated entries checked.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
