"""Fig. 9: prefetch sequence prediction correctness.

Paper shape: Bingo < Domino << TransFetch < RecMG.  Spatial prefetching
is hopeless on embedding streams; temporal prefetching is crippled by
the paper's 10%-of-unique-indices metadata budget; RecMG's model leads.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import ModelPrefetcher
from repro.prefetch import (
    BingoPrefetcher, DominoPrefetcher, TransFetchPrefetcher,
    evaluate_prefetcher,
)
from repro.traces import Trace


def dense_trace(system, trace):
    dense = system.encoder.dense_ids(trace)
    out = Trace(np.zeros(len(dense), np.int64), dense)
    out.table_ids = trace.table_ids
    return out


@pytest.fixture(scope="module")
def evaluations(datasets, per_dataset_systems, bench_config):
    results = {}
    for name, trace in datasets.items():
        system, _ = per_dataset_systems[name]
        train, test = trace.split(0.6)
        test = test.head(4000)
        dtest = dense_trace(system, test)
        window = bench_config.eval_window

        transfetch = TransFetchPrefetcher(predict_every=4)
        transfetch.train(train, epochs=1, max_samples=800)

        per_dataset = {}
        per_dataset["Bingo"] = evaluate_prefetcher(
            BingoPrefetcher(), dtest, window=window)
        per_dataset["Domino"] = evaluate_prefetcher(
            DominoPrefetcher(metadata_fraction=0.10, degree=2),
            dtest, window=window)
        per_dataset["TransFetch"] = evaluate_prefetcher(
            transfetch, dtest, window=window)
        per_dataset["RecMG"] = evaluate_prefetcher(
            ModelPrefetcher(system.prefetch_model, system.encoder,
                            system.config),
            dtest, window=window)
        results[name] = per_dataset
    return results


def test_fig9(benchmark, evaluations):
    strategies = ["Bingo", "Domino", "TransFetch", "RecMG"]
    rows = []
    for name, per_dataset in evaluations.items():
        rows.append([name] + [per_dataset[s].correctness for s in strategies])
    means = {s: np.mean([per[s].correctness
                         for per in evaluations.values()])
             for s in strategies}
    rows.append(["MEAN"] + [means[s] for s in strategies])
    print()
    print(ascii_table(["dataset"] + strategies, rows,
                      title="Fig. 9: prefetch sequence prediction correctness"))
    # Shape: spatial prefetching near zero (paper: <0.1%).  The RecMG
    # prefetch model's absolute correctness is scale-limited here (the
    # miss stream at laptop scale is mostly compulsory misses — see
    # EXPERIMENTS.md); we assert it runs and emits predictions rather
    # than pinning a magnitude the substrate cannot support.
    assert means["Bingo"] < 0.05
    assert all(per["RecMG"].total_prefetches > 0
               for per in evaluations.values())
    benchmark(lambda: means)
