"""Table IV: prefetcher statistics — accuracy and volume.

Paper shape: Berti/MAB flood the buffer with low-accuracy prefetches;
BOP is moderate; RecMG issues few, high-accuracy prefetches.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.cache import capacity_from_fraction
from repro.core import ModelPrefetcher
from repro.prefetch import (
    BertiPrefetcher, BestOffsetPrefetcher, LRUBufferWithPrefetch,
    MicroArmedBanditPrefetcher,
)
from repro.traces.access import remap_to_dense


def run(trace, capacity, prefetcher):
    dense, _ = remap_to_dense(trace)
    buffer = LRUBufferWithPrefetch(capacity, prefetcher=prefetcher)
    tables = trace.table_ids
    for i in range(len(dense)):
        buffer.access(int(dense[i]), pc=int(tables[i]))
    accuracy = (buffer.prefetches_useful / buffer.prefetches_issued
                if buffer.prefetches_issued else 0.0)
    return accuracy, buffer.prefetches_issued


def test_table4(benchmark, datasets, per_dataset_systems):
    accs = {}
    vols = {}
    for name, trace in list(datasets.items())[:2]:
        system, _ = per_dataset_systems[name]
        _, test = trace.split(0.6)
        capacity = capacity_from_fraction(trace, 0.20)
        adapter = ModelPrefetcher(system.prefetch_model, system.encoder,
                                  system.config)
        recmg = system.evaluate(test, capacity=capacity)
        strategies = {
            "Berti + LRU": run(test, capacity, BertiPrefetcher()),
            "Mab + LRU": run(test, capacity, MicroArmedBanditPrefetcher()),
            "BOP + LRU": run(test, capacity, BestOffsetPrefetcher(degree=2)),
            "PM + LRU": run(test, capacity, adapter),
            "RecMG": (recmg.prefetch_accuracy, recmg.prefetches_issued),
        }
        for strategy, (accuracy, issued) in strategies.items():
            accs.setdefault(strategy, []).append(accuracy)
            vols.setdefault(strategy, []).append(issued)
    rows = [[s, float(np.mean(accs[s])), float(np.mean(vols[s]))]
            for s in accs]
    print()
    print(ascii_table(
        ["strategy", "prefetch accuracy", "total prefetches (mean)"],
        rows, title="Table IV: prefetcher statistics",
    ))
    # Shape: RecMG issues a small, targeted volume of prefetches (paper:
    # 2M vs Berti's 12M) while keeping nonzero accuracy; the delta-based
    # prefetchers flood the buffer.
    assert float(np.mean(vols["RecMG"])) < float(np.mean(vols["Berti + LRU"]))
    assert float(np.mean(vols["RecMG"])) < float(np.mean(vols["Mab + LRU"])) \
        or float(np.mean(accs["RecMG"])) >= float(np.mean(accs["Mab + LRU"]))
    benchmark(lambda: rows)
