"""Fig. 3: reuse-distance histogram + LRU vs Belady hit-rate curves.

Paper shape: a heavy tail of long reuse distances; Belady needs a small
fraction of LRU's capacity for the same hit rate.
"""


from repro.analysis import ascii_bars, ascii_table
from repro.cache import belady_hit_rate
from repro.traces import (
    long_reuse_fraction, lru_hit_rate_curve, reuse_distances,
    reuse_histogram,
)


def test_fig3(benchmark, dataset0_full):
    trace = dataset0_full
    distances = benchmark.pedantic(reuse_distances, args=(trace,),
                                   rounds=1, iterations=1)
    uppers, counts = reuse_histogram(distances, max_power=16)
    labels = [f"2^{i}" for i in range(len(counts))]
    print()
    print(ascii_bars(labels, counts.astype(float),
                     title="Fig. 3: reuse distance histogram"))

    capacities = [64, 256, 1024, 4096]
    lru_curve = lru_hit_rate_curve(distances, capacities)
    belady_curve = [belady_hit_rate(trace, c) for c in capacities]
    print(ascii_table(
        ["capacity", "LRU hit rate", "Belady hit rate"],
        [[c, l, b] for c, l, b in zip(capacities, lru_curve, belady_curve)],
        title="Fig. 3 overlay: LRU vs Belady",
    ))

    # Shape assertions: long-reuse tail exists; Belady dominates LRU.
    buffer_scale = int(trace.num_unique * 0.2)
    assert long_reuse_fraction(distances, buffer_scale) > 0.1
    for lru_rate, opt_rate in zip(lru_curve, belady_curve):
        assert opt_rate >= lru_rate - 1e-9
    # Belady at 1/4 capacity beats LRU at full capacity (capacity-
    # efficiency claim; the paper reports a 16x gap at production scale).
    assert belady_hit_rate(trace, 1024) > lru_curve[3] * 0.8
