"""Fig. 17: normalized DLRM inference time across GPU buffer sizes.

Paper shape: everything gets faster with a bigger buffer; the caching
model's share of RecMG's benefit grows with buffer size, the prefetch
model's share dominates only at tiny buffers.
"""


from repro.analysis import ascii_table
from repro.cache import LRUCache
from repro.dlrm import InferenceEngine, ManagerClassifier

FRACTIONS = [0.02, 0.05, 0.10, 0.15]


def test_fig17(benchmark, dataset0_full, trained_system):
    system, _ = trained_system
    _, test = dataset0_full.split(0.6)
    engine = InferenceEngine(accesses_per_batch=2048)

    times = {"LRU": [], "CM": [], "RecMG": []}
    for fraction in FRACTIONS:
        capacity = max(1, int(dataset0_full.num_unique * fraction))
        times["LRU"].append(
            engine.run(test, LRUCache(capacity)).mean_batch_ms)
        times["CM"].append(engine.run(test, ManagerClassifier(
            system.deploy(capacity, use_prefetch_model=False),
            test)).mean_batch_ms)
        times["RecMG"].append(engine.run(test, ManagerClassifier(
            system.deploy(capacity), test)).mean_batch_ms)

    reference = times["RecMG"][-1]  # normalize to RecMG @ 15% (paper)
    rows = [[f"{f:.0%}"] + [times[s][i] / reference
                            for s in ("LRU", "CM", "RecMG")]
            for i, f in enumerate(FRACTIONS)]
    print()
    print(ascii_table(
        ["buffer size", "LRU (norm)", "CM (norm)", "RecMG (norm)"],
        rows, title="Fig. 17: normalized inference time vs buffer size",
    ))
    # Shape: larger buffers are faster for every policy; RecMG at 15% is
    # the fastest configuration (normalization reference = 1.0).
    for series in times.values():
        assert series[-1] <= series[0] + 1e-9
    assert min(times["RecMG"]) >= reference - 1e-9
    benchmark(lambda: times)
