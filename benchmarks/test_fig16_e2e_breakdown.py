"""Fig. 16: per-batch DLRM inference time breakdown (LRU / CM / RecMG).

Paper shape: RecMG cuts buffer-management time (on-demand fetches)
relative to LRU — 31% mean end-to-end reduction, up to 43%.
"""

import numpy as np

from repro.analysis import ascii_table, reduction
from repro.cache import LRUCache, capacity_from_fraction
from repro.dlrm import InferenceEngine, ManagerClassifier


def test_fig16(benchmark, datasets, per_dataset_systems):
    engine = InferenceEngine(accesses_per_batch=2048)
    rows = []
    reductions = []
    for name, trace in datasets.items():
        system, _ = per_dataset_systems[name]
        _, test = trace.split(0.6)
        capacity = capacity_from_fraction(trace, 0.20)

        lru_report = engine.run(test, LRUCache(capacity))
        cm_report = engine.run(test, ManagerClassifier(
            system.deploy(capacity, use_prefetch_model=False), test))
        recmg_report = engine.run(test, ManagerClassifier(
            system.deploy(capacity), test))

        for label, report in (("LRU", lru_report), ("CM", cm_report),
                              ("RecMG", recmg_report)):
            b = report.mean_breakdown()
            rows.append([f"{name}/{label}", b.embedding_copy_ms,
                         b.gpu_compute_ms, b.buffer_management_ms,
                         b.others_ms, b.total_ms])
        reductions.append(reduction(lru_report.mean_batch_ms,
                                    recmg_report.mean_batch_ms))
    print()
    print(ascii_table(
        ["config", "emb copy (ms)", "GPU compute (ms)",
         "buffer mgmt (ms)", "others (ms)", "total (ms)"],
        rows, title="Fig. 16: inference time breakdown per batch",
    ))
    mean_reduction = float(np.mean(reductions))
    print(f"mean end-to-end reduction vs LRU: {mean_reduction:.1%} "
          f"(max {max(reductions):.1%})")
    # Shape: RecMG reduces inference time vs LRU on average.
    assert mean_reduction > 0.0
    benchmark(lambda: mean_reduction)
