"""Fig. 11: Chamfer + decoupled window vs the L2 baseline.

Paper shape: the L2 baseline's training loss stops improving almost
immediately, while the Chamfer-trained model keeps improving.  We also
run the forward-only Chamfer (Eq. 4) to exhibit the output-collapse
shortcut the bidirectional term fixes.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.cache import capacity_from_fraction
from repro.core import (
    FeatureEncoder, PrefetchModel, build_labels, output_collapse_ratio,
    prefetch_targets, train_prefetch_model,
)
from repro.core.prefetch_model import BucketDecoder


def run_loss(kind, trace, config):
    encoder = FeatureEncoder(config).fit(trace)
    capacity = capacity_from_fraction(trace, 0.20)
    labels = build_labels(trace, capacity, config, encoder)
    chunks = encoder.encode_chunks(trace)
    model = PrefetchModel(config, encoder.num_tables,
                          rng=np.random.default_rng(0))
    miss_dense = labels.dense_ids[labels.miss_positions]
    model.set_decoder(BucketDecoder.from_miss_ids(miss_dense,
                                                  config.hash_buckets))
    sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
    result = train_prefetch_model(model, chunks, sel, norm, dense,
                                  encoder, config, loss_kind=kind)
    collapse = output_collapse_ratio(model, chunks, sel[:100], encoder)
    return result, collapse


def test_fig11(benchmark, datasets, bench_config):
    trace, _ = datasets["dataset0"].split(0.6)
    rows = []
    improvements = {}
    collapses = {}
    for kind in ("chamfer", "chamfer_forward", "l2"):
        result, collapse = run_loss(kind, trace, bench_config)
        first = float(np.mean(result.losses[:5]))
        last = float(np.mean(result.losses[-5:]))
        improvements[kind] = (first - last) / max(abs(first), 1e-9)
        collapses[kind] = collapse
        rows.append([kind, first, last, f"{improvements[kind]:.1%}",
                     f"{collapse:.0%}"])
    print()
    print(ascii_table(
        ["loss", "initial loss", "final loss", "improvement",
         "collapsed outputs"],
        rows, title="Fig. 11: loss-function ablation",
    ))
    # Shape: the decoupled Chamfer objective keeps improving; the
    # forward-only variant collapses outputs far more often.
    assert improvements["chamfer"] > 0.0
    assert collapses["chamfer_forward"] >= collapses["chamfer"]
    benchmark(lambda: improvements)
