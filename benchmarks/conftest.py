"""Shared fixtures for the per-table/figure benchmark harness.

Everything expensive (dataset generation, RecMG training) is built once
per session at reduced scale; each bench prints the paper-formatted
rows/series and asserts the qualitative *shape* of the result.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cache import capacity_from_fraction
from repro.core import RecMG, RecMGConfig
from repro.traces import load_dataset

#: Accesses/sec per hot path recorded by benchmarks/test_perf_hotpaths.py
#: via the ``record_hotpath`` fixture; flushed to BENCH_hotpaths.json at
#: session end so the perf trajectory is tracked across PRs (CI uploads
#: the file as an artifact).
_HOTPATH_RESULTS: dict = {}

#: Datasets used by multi-dataset figures (3 of the paper's 5 to bound
#: runtime; pass --all-datasets in your head: presets exist for all 5).
BENCH_DATASETS = ["dataset0", "dataset1", "dataset2"]
BENCH_SCALE = 0.15


def pytest_addoption(parser):
    parser.addoption(
        "--perf-budget", action="store", type=float, default=5.0,
        help="Minimum speedup of vectorized OPTgen over the reference "
             "implementation enforced by test_perf_hotpaths on a "
             "50k-access synthetic trace; 0 disables every wall-clock "
             "assertion in that module.",
    )


@pytest.fixture(scope="session")
def perf_budget(request):
    """Speedup floor for the hot-path benchmarks (``--perf-budget``)."""
    return float(request.config.getoption("--perf-budget"))


@pytest.fixture(scope="session")
def record_hotpath():
    """Record one hot path's throughput for BENCH_hotpaths.json.

    ``record_hotpath(name, accesses, seconds, ref_seconds=None,
    **extra)`` — accesses/sec is derived; a reference timing adds the
    speedup; extra keyword pairs land verbatim in the entry.
    """
    def _record(name: str, accesses: int, seconds: float,
                ref_seconds: float = None, **extra) -> None:
        entry = {
            "accesses": int(accesses),
            "seconds": seconds,
            "accesses_per_sec": accesses / seconds,
        }
        if ref_seconds is not None:
            entry["reference_seconds"] = ref_seconds
            entry["reference_accesses_per_sec"] = accesses / ref_seconds
            entry["speedup"] = ref_seconds / seconds
        entry.update(extra)
        _HOTPATH_RESULTS[name] = entry
    return _record


def pytest_sessionfinish(session, exitstatus):
    """Flush the hot-path throughput numbers to BENCH_hotpaths.json
    (repo root) whenever the perf benches ran."""
    if not _HOTPATH_RESULTS:
        return
    payload = {
        "source": "benchmarks/test_perf_hotpaths.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "hot_paths": dict(sorted(_HOTPATH_RESULTS.items())),
    }
    path = Path(session.config.rootpath) / "BENCH_hotpaths.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def datasets():
    return {name: load_dataset(name, scale=BENCH_SCALE)
            for name in BENCH_DATASETS}


@pytest.fixture(scope="session")
def bench_config():
    return RecMGConfig(
        hidden=32,
        hash_buckets=1024,
        caching_epochs=3,
        prefetch_epochs=4,
        max_train_chunks=700,
    )


@pytest.fixture(scope="session")
def dataset0_full():
    return load_dataset("dataset0", scale=0.3)


@pytest.fixture(scope="session")
def trained_system(dataset0_full, bench_config):
    """RecMG trained on dataset0's first 60%; shared across benches."""
    train, _ = dataset0_full.split(0.6)
    capacity = capacity_from_fraction(dataset0_full, 0.20)
    system = RecMG(bench_config)
    system.fit(train, buffer_capacity=capacity)
    return system, capacity


@pytest.fixture(scope="session")
def per_dataset_systems(datasets, bench_config):
    """A RecMG system per dataset (lighter training)."""
    systems = {}
    for name, trace in datasets.items():
        train, _ = trace.split(0.6)
        capacity = capacity_from_fraction(trace, 0.20)
        system = RecMG(bench_config)
        system.fit(train, buffer_capacity=capacity)
        systems[name] = (system, capacity)
    return systems
