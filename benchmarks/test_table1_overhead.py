"""Table I: embedding-access overhead vs caching ratio (DS1-DS4).

Paper row shape: overhead grows as the caching ratio shrinks and the
table count / batch size grow (0% -> 52.7% -> 30.1% -> 58.7%).
"""


from repro.analysis import ascii_table
from repro.cache import LRUCache
from repro.dlrm import InferenceEngine
from repro.traces import TABLE1_CONFIGS, table1_trace


def run_config(name: str):
    spec = TABLE1_CONFIGS[name]
    trace = table1_trace(name, scale=0.2)
    ratio = spec["caching_ratio"]
    capacity = max(1, int(trace.num_unique * ratio))
    engine = InferenceEngine(accesses_per_batch=32 * spec["batch_size"])
    # Table I measures steady-state serving: the buffer is pre-populated
    # (a 100% caching ratio means *everything* is resident), so warm the
    # cache with one pass before the measured run.
    cache = LRUCache(capacity)
    for key in trace.keys():
        cache.access(int(key))
    cache.stats.hits = cache.stats.misses = 0
    report = engine.run(trace, cache)
    breakdown = report.mean_breakdown()
    overhead = breakdown.buffer_management_ms / breakdown.total_ms
    return trace, overhead, report


def test_table1(benchmark):
    rows = []
    overheads = {}
    for name, spec in TABLE1_CONFIGS.items():
        trace, overhead, report = run_config(name)
        overheads[name] = overhead
        rows.append([
            name, trace.num_tables, len(trace), trace.num_unique,
            spec["batch_size"], f"{spec['caching_ratio']:.0%}",
            f"{overhead:.1%}",
        ])
    print()
    print(ascii_table(
        ["config", "#tables", "#accesses", "#unique", "batch",
         "caching ratio", "emb access overhead"],
        rows, title="Table I: embedding-access overhead",
    ))
    # Shape: full caching -> negligible overhead; partial caching -> large.
    assert overheads["DS1"] < 0.05
    assert overheads["DS2"] > overheads["DS1"]
    assert overheads["DS3"] > overheads["DS1"]

    benchmark(lambda: run_config("DS2"))
