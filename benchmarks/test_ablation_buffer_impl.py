"""Extra ablation: naive O(n) vs heap O(log n) vs array-backed CLOCK.

The exact pair share semantics (property-tested in
tests/test_buffer.py); the clock backend approximates them with batched
sweeps (tests/test_buffer_differential.py).  This bench measures the
per-access cost of each backend under a scalar serving loop plus the
clock backend's batched `evict_batch` advantage.
"""

import time

import numpy as np

from repro.cache import ClockBuffer, FastPriorityBuffer, PriorityBuffer


def drive(buffer_cls, keys, capacity):
    buffer = buffer_cls(capacity)
    for key in keys:
        key = int(key)
        if key in buffer:
            buffer.set_priority(key, 5)
        else:
            if buffer.is_full:
                buffer.evict_one()
            buffer.insert(key, 4)
    return buffer


def drive_batched(keys, capacity, block=512, key_space=None):
    """Clock serving the way the manager does: pre-reclaim space for a
    whole block with one evict_batch call, then bulk put_batch.

    Dict mode (``key_space=None``) classifies membership the PR 2 way —
    python set ops against the live key→slot view; dense mode gathers
    the residency bitmap through ``contains_batch`` (the PR 3 path), so
    the two rows isolate exactly the membership-structure win."""
    buffer = ClockBuffer(capacity, key_space=key_space)
    if key_space is None:
        resident = buffer.residency_map()   # live dict view
        for lo in range(0, len(keys), block):
            segment = [int(k) for k in keys[lo:lo + block]]
            while True:
                new = {k for k in segment if k not in resident}
                needed = len(resident) + len(new) - capacity
                if needed <= 0:
                    break
                buffer.evict_batch(needed)
            buffer.put_batch(segment, 4)
        return buffer
    keys = np.asarray(keys, dtype=np.int64)
    for lo in range(0, len(keys), block):
        segment = keys[lo:lo + block]
        uniq = np.unique(segment)
        while True:
            new = int((~buffer.contains_batch(uniq)).sum())
            needed = len(buffer) + new - capacity
            if needed <= 0:
                break
            buffer.evict_batch(needed)
        buffer.put_batch(segment, 4)
    return buffer


def _best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_buffer_impl(benchmark, dataset0_full, perf_budget):
    keys = dataset0_full.keys()[:8000]
    capacity = 1500

    naive_s = _best_of(lambda: drive(PriorityBuffer, keys, capacity),
                       repeats=1)
    fast_s = _best_of(lambda: drive(FastPriorityBuffer, keys, capacity))
    clock_scalar_s = _best_of(lambda: drive(ClockBuffer, keys, capacity))
    clock_batched_s = _best_of(lambda: drive_batched(keys, capacity))

    # Dense-id residency mode: remap keys to [0, unique) so membership
    # runs off the ResidencyIndex bitmap instead of the key→slot dict.
    dense = np.unique(keys, return_inverse=True)[1].astype(np.int64)
    key_space = int(dense.max()) + 1
    clock_dense_s = _best_of(
        lambda: drive_batched(dense, capacity, key_space=key_space))

    print(f"\nnaive O(n) buffer:      {naive_s:.3f}s")
    print(f"heap-based buffer:      {fast_s:.3f}s "
          f"({naive_s / fast_s:.1f}x faster)")
    print(f"clock, scalar evicts:   {clock_scalar_s:.3f}s")
    print(f"clock, batched evicts:  {clock_batched_s:.3f}s "
          f"({fast_s / clock_batched_s:.1f}x over heap)")
    print(f"clock, dense residency: {clock_dense_s:.3f}s "
          f"({fast_s / clock_dense_s:.1f}x over heap)")
    # Wall-clock assertions follow the --perf-budget convention (0
    # disables them on noisy shared runners): the heap implementation
    # must win by a wide margin at this size, and batched clock serving
    # must beat the scalar heap loop (dense residency mode included).
    if perf_budget > 0:
        assert fast_s < naive_s
        assert clock_batched_s < fast_s
        assert clock_dense_s < fast_s
    benchmark.pedantic(drive, args=(FastPriorityBuffer, keys[:2000], capacity),
                       rounds=1, iterations=1)
