"""Extra ablation: naive O(n) vs heap O(log n) vs array-backed CLOCK.

The exact pair share semantics (property-tested in
tests/test_buffer.py); the clock backend approximates them with batched
sweeps (tests/test_buffer_differential.py).  This bench measures the
per-access cost of each backend under a scalar serving loop plus the
clock backend's batched `evict_batch` advantage.
"""

import time

import numpy as np
import pytest

from repro.cache import ClockBuffer, FastPriorityBuffer, PriorityBuffer


def drive(buffer_cls, keys, capacity):
    buffer = buffer_cls(capacity)
    for key in keys:
        key = int(key)
        if key in buffer:
            buffer.set_priority(key, 5)
        else:
            if buffer.is_full:
                buffer.evict_one()
            buffer.insert(key, 4)
    return buffer


def drive_batched(keys, capacity, block=512):
    """Clock serving the way the manager does: pre-reclaim space for a
    whole block with one evict_batch call, then bulk put_batch."""
    buffer = ClockBuffer(capacity)
    resident = buffer.residency_map()
    for lo in range(0, len(keys), block):
        segment = [int(k) for k in keys[lo:lo + block]]
        while True:
            new = {k for k in segment if k not in resident}
            needed = len(resident) + len(new) - capacity
            if needed <= 0:
                break
            buffer.evict_batch(needed)
        buffer.put_batch(segment, 4)
    return buffer


def test_buffer_impl(benchmark, dataset0_full):
    keys = dataset0_full.keys()[:8000]
    capacity = 1500

    start = time.perf_counter()
    drive(PriorityBuffer, keys, capacity)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    drive(FastPriorityBuffer, keys, capacity)
    fast_s = time.perf_counter() - start

    start = time.perf_counter()
    drive(ClockBuffer, keys, capacity)
    clock_scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    drive_batched(keys, capacity)
    clock_batched_s = time.perf_counter() - start

    print(f"\nnaive O(n) buffer:      {naive_s:.3f}s")
    print(f"heap-based buffer:      {fast_s:.3f}s "
          f"({naive_s / fast_s:.1f}x faster)")
    print(f"clock, scalar evicts:   {clock_scalar_s:.3f}s")
    print(f"clock, batched evicts:  {clock_batched_s:.3f}s "
          f"({fast_s / clock_batched_s:.1f}x over heap)")
    # The heap implementation must win by a wide margin at this size,
    # and batched clock serving must beat the scalar heap loop.
    assert fast_s < naive_s
    assert clock_batched_s < fast_s
    benchmark.pedantic(drive, args=(FastPriorityBuffer, keys[:2000], capacity),
                       rounds=1, iterations=1)
