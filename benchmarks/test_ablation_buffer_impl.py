"""Extra ablation: naive O(n) vs heap-based O(log n) priority buffer.

Same semantics (property-tested in tests/test_buffer.py); this bench
measures the speedup of the production-oriented implementation.
"""

import time

import numpy as np
import pytest

from repro.cache import FastPriorityBuffer, PriorityBuffer


def drive(buffer_cls, keys, capacity):
    buffer = buffer_cls(capacity)
    for key in keys:
        key = int(key)
        if key in buffer:
            buffer.set_priority(key, 5)
        else:
            if buffer.is_full:
                buffer.evict_one()
            buffer.insert(key, 4)
    return buffer


def test_buffer_impl(benchmark, dataset0_full):
    keys = dataset0_full.keys()[:8000]
    capacity = 1500

    start = time.perf_counter()
    drive(PriorityBuffer, keys, capacity)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    drive(FastPriorityBuffer, keys, capacity)
    fast_s = time.perf_counter() - start

    print(f"\nnaive O(n) buffer:  {naive_s:.3f}s")
    print(f"heap-based buffer:  {fast_s:.3f}s "
          f"({naive_s / fast_s:.1f}x faster)")
    # The heap implementation must win by a wide margin at this size.
    assert fast_s < naive_s
    benchmark.pedantic(drive, args=(FastPriorityBuffer, keys[:2000], capacity),
                       rounds=1, iterations=1)
