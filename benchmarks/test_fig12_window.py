"""Fig. 12: sensitivity of the prefetch model to the evaluation-window
size (normalized by output sequence length).

Paper shape: a window larger than the output raises accuracy sharply;
coverage saturates around ratio 3 (RecMG's default).
"""

from dataclasses import replace

import numpy as np

from repro.analysis import ascii_table
from repro.cache import capacity_from_fraction
from repro.core import (
    FeatureEncoder, PrefetchModel, build_labels, prefetch_metrics,
    prefetch_targets, train_prefetch_model,
)
from repro.core.prefetch_model import BucketDecoder

RATIOS = [1, 2, 3, 5]


def test_fig12(benchmark, datasets, bench_config):
    trace, _ = datasets["dataset0"].split(0.6)
    rows = []
    metrics = {}
    for ratio in RATIOS:
        config = replace(bench_config, window_ratio=ratio,
                         prefetch_epochs=2, max_train_chunks=300)
        encoder = FeatureEncoder(config).fit(trace)
        capacity = capacity_from_fraction(trace, 0.20)
        labels = build_labels(trace, capacity, config, encoder)
        chunks = encoder.encode_chunks(trace)
        model = PrefetchModel(config, encoder.num_tables,
                              rng=np.random.default_rng(0))
        miss_dense = labels.dense_ids[labels.miss_positions]
        model.set_decoder(BucketDecoder.from_miss_ids(
            miss_dense, config.hash_buckets))
        sel, norm, dense = prefetch_targets(chunks, labels, config, encoder)
        train_prefetch_model(model, chunks, sel, norm, dense,
                             encoder, config)
        correctness, coverage = prefetch_metrics(
            model, chunks, sel, dense, encoder)
        metrics[ratio] = (correctness, coverage)
        rows.append([ratio, correctness, coverage])
    print()
    print(ascii_table(
        ["window/output ratio", "accuracy", "coverage"],
        rows, title="Fig. 12: evaluation-window sensitivity",
    ))
    # Shape: scoring against a wider window cannot reduce accuracy.
    assert metrics[3][0] >= metrics[1][0] - 0.02
    benchmark(lambda: metrics)
