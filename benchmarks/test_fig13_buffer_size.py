"""Fig. 13: hit rate vs GPU buffer size.

Paper shape: RecMG above LRU once the buffer is not minuscule, tracking
the optimal curve; the prefetch model's contribution shrinks as the
caching model saturates the buffer.
"""


from repro.analysis import ascii_table
from repro.cache import LRUCache, simulate, simulate_belady

FRACTIONS = [0.05, 0.10, 0.20, 0.30]


def test_fig13(benchmark, dataset0_full, trained_system):
    system, _ = trained_system
    _, test = dataset0_full.split(0.6)
    rows = []
    series = {"LRU": [], "RecMG": [], "RecMG w/o prefetch": [], "Optimal": []}
    for fraction in FRACTIONS:
        capacity = max(1, int(dataset0_full.num_unique * fraction))
        lru = LRUCache(capacity)
        simulate(lru, test)
        full = system.evaluate(test, capacity=capacity)
        cm_only = system.evaluate(test, capacity=capacity,
                                  use_prefetch_model=False)
        opt, _ = simulate_belady(test, capacity)
        series["LRU"].append(lru.stats.hit_rate)
        series["RecMG"].append(full.hit_rate)
        series["RecMG w/o prefetch"].append(cm_only.hit_rate)
        series["Optimal"].append(opt.hit_rate)
        rows.append([f"{fraction:.0%}", lru.stats.hit_rate, full.hit_rate,
                     cm_only.hit_rate, opt.hit_rate])
    print()
    print(ascii_table(
        ["buffer size", "LRU", "RecMG", "RecMG w/o PF", "Optimal"],
        rows, title="Fig. 13: hit rate vs buffer size",
    ))
    # Shape: optimal dominates; RecMG >= LRU at the buffer size its
    # OPTgen labels were generated for (20%; the paper retrains per
    # deployment size, we train once).
    for i in range(len(FRACTIONS)):
        assert series["Optimal"][i] >= series["RecMG"][i] - 1e-9
    trained_idx = FRACTIONS.index(0.20)
    assert series["RecMG"][trained_idx] >= series["LRU"][trained_idx] - 0.02
    benchmark(lambda: series)
