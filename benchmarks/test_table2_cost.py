"""Table II: average cost of predicting the next embedding vector.

Paper shape: Bingo cheapest, Domino moderate, RecMG moderate, the
big ML baselines (Voyager, TransFetch) an order of magnitude dearer.
"""

import time


from repro.analysis import ascii_table
from repro.core import ModelPrefetcher
from repro.prefetch import (
    BingoPrefetcher, DominoPrefetcher, TransFetchPrefetcher,
    VoyagerPrefetcher,
)


def cost_us(prefetcher, keys, tables, repeat=1):
    start = time.perf_counter()
    for _ in range(repeat):
        for i in range(len(keys)):
            prefetcher.observe(int(keys[i]), pc=int(tables[i]))
    return (time.perf_counter() - start) / (repeat * len(keys)) * 1e6


def test_table2(benchmark, datasets, per_dataset_systems):
    name = "dataset0"
    trace = datasets[name].head(1500)
    system, _ = per_dataset_systems[name]
    dense = system.encoder.dense_ids(trace)
    tables = trace.table_ids

    train, _ = datasets[name].split(0.6)
    transfetch = TransFetchPrefetcher(predict_every=1)
    transfetch.train(train, epochs=1, max_samples=300)
    voyager = VoyagerPrefetcher(context=8, dim=16, hidden=64,
                                predict_every=1)
    voyager.train(train.head(2000), epochs=1, max_samples=200)

    costs = {
        "Bingo": cost_us(BingoPrefetcher(), dense, tables),
        "Domino": cost_us(DominoPrefetcher(), dense, tables),
        "Voyager": cost_us(voyager, trace.keys(), tables),
        "TransFetch": cost_us(transfetch, dense, tables),
        "RecMG": cost_us(
            ModelPrefetcher(system.prefetch_model, system.encoder,
                            system.config),
            dense, tables,
        ),
    }
    print()
    print(ascii_table(
        ["strategy", "cost per prediction (us)"],
        [[k, v] for k, v in costs.items()],
        title="Table II: prediction cost",
    ))
    # Shape: rule-based Bingo/Domino are cheap; Voyager (vocabulary-
    # sized output heads) is the most expensive.  Note: in the paper
    # RecMG's serving is vectorized C++/AVX512 (10x faster, §VI-C); in
    # interpreted numpy its per-access cost sits between TransFetch and
    # Voyager rather than below both.
    assert costs["Bingo"] < costs["RecMG"]
    assert costs["Voyager"] > costs["TransFetch"]
    assert costs["Voyager"] > costs["Domino"]
    benchmark(lambda: cost_us(BingoPrefetcher(), dense[:300], tables[:300]))
