"""Fig. 19: estimated DLRM inference latency across strategies.

Paper shape: SRRIP/Hawkeye/CM/BOP+LRU/RecMG beat 32-way LRU; DRRIP,
Mockingjay and Berti are comparable or worse; RecMG leads (paper: -31%).
"""


from repro.analysis import ascii_table, geomean
from repro.cache import (
    DRRIPReplacement, HawkeyeReplacement, LRUReplacement,
    MockingjayReplacement, SRRIPReplacement, )
from repro.dlrm import InferenceEngine, calibrate
from repro.prefetch import BertiPrefetcher, BestOffsetPrefetcher
from test_fig15_champsim import run_policy


def test_fig19(benchmark, datasets, per_dataset_systems, dataset0_full):
    # Performance model calibrated once on dataset0.
    engine = InferenceEngine(accesses_per_batch=2048)
    _, caltest = dataset0_full.split(0.6)
    model, _ = calibrate(engine, caltest, hit_rates=(0.0, 0.5, 1.0))

    estimates = {}
    for name, trace in list(datasets.items())[:2]:
        system, _ = per_dataset_systems[name]
        train, test = trace.split(0.6)
        test = test.head(5000)
        capacity = max(32, int(trace.num_unique * 0.15))
        hit_rates = {
            "LRU": run_policy(test, capacity, LRUReplacement),
            "SRRIP": run_policy(test, capacity, SRRIPReplacement),
            "DRRIP": run_policy(test, capacity, DRRIPReplacement),
            "Hawkeye": run_policy(test, capacity, HawkeyeReplacement),
            "Mockingjay": run_policy(test, capacity, MockingjayReplacement),
            "CM": system.evaluate(test, capacity=capacity,
                                  use_prefetch_model=False).hit_rate,
            "Berti": run_policy(test, capacity, LRUReplacement,
                                BertiPrefetcher()),
            "BOP+LRU": run_policy(test, capacity, LRUReplacement,
                                  BestOffsetPrefetcher()),
            "RecMG": system.evaluate(test, capacity=capacity).hit_rate,
        }
        for strategy, rate in hit_rates.items():
            estimates.setdefault(strategy, []).append(model.predict(rate))

    rows = [[s, geomean(v)] for s, v in estimates.items()]
    print()
    print(ascii_table(
        ["strategy", "est. inference time (ms, geomean)"],
        rows, title="Fig. 19: estimated latency across strategies",
    ))
    overall = {s: geomean(v) for s, v in estimates.items()}
    # Shape: RecMG's estimated latency at or below the LRU default.
    assert overall["RecMG"] <= overall["LRU"] * 1.02
    assert overall["CM"] <= overall["LRU"] * 1.02
    benchmark(lambda: overall)
