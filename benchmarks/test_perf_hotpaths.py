"""Hot-path throughput: vectorized engines vs their audit references.

Tracks accesses/sec for the three serving-critical loops — OPTgen
labeling, online manager demand serving, and the no-prefetcher LRU
breakdown — so the vectorization work cannot silently regress.  The
OPTgen speedup is additionally enforced against ``--perf-budget``
(default 5x on a 50k-access synthetic trace); ``--perf-budget 0``
disables every wall-clock assertion in this module, separating
load-induced timing flakes from correctness failures.

Every measurement is also recorded through the ``record_hotpath``
fixture; the session flushes them to ``BENCH_hotpaths.json`` (repo
root, uploaded as a CI artifact) so the perf trajectory is
machine-readable across PRs.
"""

import gc
import time

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.cache import run_optgen, run_optgen_reference
from repro.core import RecMGConfig
from repro.core.caching_model import CachingModel
from repro.core.features import FeatureEncoder
from repro.core.labeling import build_labels, caching_targets
from repro.core.manager import RecMGManager
from repro.core.training import train_caching_model
from repro.prefetch import run_breakdown, run_breakdown_sweep
from repro.traces import (
    SyntheticTraceConfig,
    generate_drifting_hot_band_trace,
    generate_hot_shard_trace,
    generate_trace,
    model_guided_scenarios,
)

#: Trace length for the throughput measurements (the --perf-budget
#: contract is defined at this scale).
PERF_ACCESSES = 50_000


@pytest.fixture(scope="module")
def perf_trace():
    config = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=PERF_ACCESSES,
        num_clusters=64, cluster_block=8, periodic_items=500,
        periodic_spacing=7, seed=11,
    )
    return generate_trace(config)


def _timed(fn, repeats=1):
    """Best-of-N wall time and the last result.

    The collector is paused around each run (``timeit`` does the
    same): a generational GC pass triggered by one measurement's
    garbage otherwise lands in *another* measurement's window, which
    skews the engine-vs-reference ratios these gates assert on —
    the engine that allocates more objects gets billed for the
    other's garbage."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


def _report(title, fast_seconds, ref_seconds):
    rows = [
        ["vectorized", PERF_ACCESSES / fast_seconds, fast_seconds],
        ["reference", PERF_ACCESSES / ref_seconds, ref_seconds],
        ["speedup", ref_seconds / fast_seconds, float("nan")],
    ]
    print()
    print(ascii_table(["engine", "accesses/sec", "seconds"], rows,
                      title=title))
    return rows


def test_optgen_labeling_throughput(perf_trace, perf_budget, benchmark,
                                    record_hotpath):
    capacity = max(1, int(perf_trace.num_unique * 0.2))
    fast_seconds, fast = _timed(
        lambda: run_optgen(perf_trace, capacity), repeats=3)
    ref_seconds, reference = _timed(
        lambda: run_optgen_reference(perf_trace, capacity))
    assert np.array_equal(fast.opt_hits, reference.opt_hits)
    assert np.array_equal(fast.cache_friendly, reference.cache_friendly)
    record_hotpath("optgen_labeling", PERF_ACCESSES, fast_seconds,
                   ref_seconds=ref_seconds, gated=True)
    rows = _report("OPTgen labeling throughput", fast_seconds, ref_seconds)
    speedup = ref_seconds / fast_seconds
    if perf_budget > 0:
        assert speedup >= perf_budget, (
            f"vectorized OPTgen is only {speedup:.1f}x the reference "
            f"(budget: {perf_budget:.1f}x on {PERF_ACCESSES} accesses)")
    benchmark(lambda: rows)


def test_manager_serving_throughput(perf_trace, perf_budget, benchmark,
                                    record_hotpath):
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(perf_trace)

    def serve(capacity, fast_serve):
        manager = RecMGManager(capacity, encoder, config)
        return manager.run(perf_trace, fast_serve=fast_serve)

    # Steady state: the buffer is a fraction of the working set, every
    # miss evicts, and hit runs are short — the bulk pre-pass must at
    # minimum not regress against the scalar loop.
    steady = max(1, int(perf_trace.num_unique * 0.2))
    fast_seconds, fast = _timed(lambda: serve(steady, True), repeats=3)
    ref_seconds, reference = _timed(lambda: serve(steady, False), repeats=3)
    assert fast == reference
    record_hotpath("manager_serving_steady_exact", PERF_ACCESSES,
                   fast_seconds, ref_seconds=ref_seconds, gated=True)
    _report("Manager demand serving throughput (steady state)",
            fast_seconds, ref_seconds)
    if perf_budget > 0:
        assert fast_seconds < ref_seconds * 1.2, \
            "bulk serving pre-pass regressed against the scalar loop"

    # Eviction-light regime (buffer sized past the working set, the
    # paper's large-buffer ablations): whole segments resolve through
    # the bulk path and the pre-pass must win outright.
    roomy = int(perf_trace.num_unique * 1.2) + 1
    fast_seconds, fast = _timed(lambda: serve(roomy, True), repeats=3)
    ref_seconds, reference = _timed(lambda: serve(roomy, False), repeats=3)
    assert fast == reference
    record_hotpath("manager_serving_eviction_light", PERF_ACCESSES,
                   fast_seconds, ref_seconds=ref_seconds, gated=True)
    rows = _report("Manager demand serving throughput (eviction-light)",
                   fast_seconds, ref_seconds)
    if perf_budget > 0:
        assert fast_seconds < ref_seconds, \
            "bulk serving pre-pass should beat the scalar loop when " \
            "serving is hit-dominated"
    benchmark(lambda: rows)


def test_exact_serving_throughput(perf_trace, perf_budget, benchmark,
                                  record_hotpath):
    """Steady-state serving win of the batched *exact* engine (PR 4).

    PR 3 left the exact ``"fast"`` backend at ~385k accesses/sec on
    this trace at a 20% buffer: the lazy-heap pre-pass still classified
    membership with a per-key dict sweep and paid per-miss heap pops.
    The dense (``key_space``) mode serves through
    :meth:`~repro.cache.buffer.FastPriorityBuffer.serve_segment` — one
    residency gather, one vectorized victim selection and one bulk
    scatter per served prefix — and must be at least 2x the dict-mode
    engine measured side by side (measured ~2.5-2.8x; absolute numbers
    in ROADMAP's hot-path table), while remaining *decision-for-decision
    identical*: both are compared against each other and the scalar
    audit loop below.
    """
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(perf_trace)
    steady = max(1, int(perf_trace.num_unique * 0.2))

    def serve(key_space, record=False):
        manager = RecMGManager(steady, encoder, config,
                               buffer_impl="fast", key_space=key_space)
        stats = manager.run(perf_trace, record_decisions=record)
        return manager, stats

    dense_seconds, (_, dense) = _timed(lambda: serve("auto"), repeats=3)
    dict_seconds, (_, dict_stats) = _timed(lambda: serve(None), repeats=3)
    assert dense == dict_stats
    # Decision streams (one recorded run each) must match exactly.
    dense_manager, _ = serve("auto", record=True)
    dict_manager, _ = serve(None, record=True)
    assert np.array_equal(dense_manager.last_decisions,
                          dict_manager.last_decisions)
    record_hotpath("manager_serving_steady_exact_dense", PERF_ACCESSES,
                   dense_seconds, ref_seconds=dict_seconds,
                   hit_rate=dense.hit_rate, gated=True)
    rows = _report("Manager demand serving throughput "
                   "(steady state, dense exact engine vs dict engine)",
                   dense_seconds, dict_seconds)
    if perf_budget > 0:
        speedup = dict_seconds / dense_seconds
        assert speedup >= 2.0, (
            f"batched exact serving is only {speedup:.2f}x the dict-mode "
            f"engine (contract: >= 2x at a steady 20% buffer)")
    benchmark(lambda: rows)


def test_clock_serving_throughput(perf_trace, perf_budget, benchmark,
                                  record_hotpath):
    """Steady-state serving win of the CLOCK backend with the dense-id
    residency index.

    PR 1 left demand serving eviction-bound: the exact lazy-heap buffer
    measured ~385k accesses/sec on this trace at a 20% buffer.  PR 2's
    ``buffer_impl="clock"`` backend pre-reclaimed space for each whole
    segment with one ``evict_batch`` sweep (~1.10M, >= 2x).  PR 3 made
    the whole serving path array-native — membership classifies through
    the :class:`~repro.cache.residency.ResidencyIndex` bitmap instead
    of the key→slot dict loop — and must stay at least 2.5x faster than
    that PR 3-era exact baseline, i.e. the dict-mode ``"fast"`` engine
    (``key_space=None``) measured side by side.  PR 4's batched exact
    engine closed most of this gap (see
    :func:`test_exact_serving_throughput`), so the approximate backend
    is additionally required not to fall behind the exact dense engine.
    """
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(perf_trace)
    steady = max(1, int(perf_trace.num_unique * 0.2))

    def serve(buffer_impl, key_space="auto"):
        manager = RecMGManager(steady, encoder, config,
                               buffer_impl=buffer_impl,
                               key_space=key_space)
        return manager.run(perf_trace)

    exact_seconds, exact = _timed(lambda: serve("fast", key_space=None),
                                  repeats=3)
    dense_seconds, dense_exact = _timed(lambda: serve("fast"), repeats=3)
    clock_seconds, clock = _timed(lambda: serve("clock"), repeats=3)
    assert clock.breakdown.total == exact.breakdown.total == PERF_ACCESSES
    assert dense_exact == exact
    # Approximate victim order: the hit rate must not fall below the
    # exact engines.  One-sided on purpose — the batched-reclaim engine
    # pre-reclaims with *protected* eviction (``avoid=segment``), which
    # legitimately lifts the clock hit rate above exact on looping
    # workloads (measured ~0.62 vs ~0.60 here after protection landed).
    assert clock.hit_rate > exact.hit_rate - 0.05
    record_hotpath("manager_serving_steady_clock_residency", PERF_ACCESSES,
                   clock_seconds, ref_seconds=exact_seconds,
                   clock_hit_rate=clock.hit_rate,
                   exact_hit_rate=exact.hit_rate, gated=True)
    rows = _report("Manager demand serving throughput "
                   "(steady state, clock+residency vs dict-mode exact)",
                   clock_seconds, exact_seconds)
    if perf_budget > 0:
        speedup = exact_seconds / clock_seconds
        assert speedup >= 2.5, (
            f"clock residency-index serving is only {speedup:.2f}x the "
            f"dict-mode exact engine (contract: >= 2.5x at a steady 20% "
            f"buffer)")
        assert clock_seconds < dense_seconds * 1.35, (
            "approximate clock serving fell clearly behind the batched "
            "exact engine — its throughput advantage is its only excuse "
            "for approximate victim order")
    benchmark(lambda: rows)


def test_sharded_serving_throughput(perf_trace, perf_budget, benchmark,
                                    record_hotpath):
    """Sharded clock serving (PR 5) vs the single-shard clock path.

    ``num_shards=4`` partitions the dense id universe across four
    independent clock shards (:mod:`repro.cache.sharding`); the
    manager's shard-wise engine routes each serving block with one
    vectorized scatter and pre-reclaims per shard with *protected*
    eviction (``evict_batch(avoid=segment)``), so the routing layer
    must stay cheap on a balanced trace: the gate is >= 0.65x the
    single-shard clock path measured side by side.  (The gate was
    0.9x while the single-shard engine still paid an unprotected
    reclaim plus a residency re-classification; once it adopted the
    same protected single-call reclaim the per-shard path already
    used, the single-shard baseline got ~20% faster and the ratio
    settled at ~0.8x and the gate moved to 0.75 — the sharded
    engine's absolute throughput did not regress, its reference
    improved.  It moved again to 0.65 when the per-shard
    id-compression layer landed: a few percent of translation
    arithmetic on every bulk boundary buys per-id memory independent
    of ``num_shards``, and the rest of the move restores the noise
    margin the 0.75 gate had been grazing on shared runners.  The
    protected reclaim also lifts the hit rate on both sides, since no
    segment key is evicted right before its own refresh.)

    The hot-shard run quantifies the degradation a static contiguous
    range partition suffers when one shard absorbs most of the traffic
    (recorded ungated: the imbalance penalty is workload truth, not a
    regression), alongside the modulo policy that stripes the same hot
    band across every shard.
    """
    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(perf_trace)
    steady = max(1, int(perf_trace.num_unique * 0.2))

    def serve(trace, enc, capacity, num_shards, policy="contiguous",
              weights=None):
        manager = RecMGManager(capacity, enc, config, buffer_impl="clock",
                               num_shards=num_shards, shard_policy=policy,
                               shard_weights=weights)
        return manager.run(trace)

    # Interleave the two sides round by round: a transient noise
    # window on a shared runner then inflates both measurements
    # instead of silently skewing the ratio (best-of per side, as
    # ``_timed(repeats=3)`` would take, but across alternating runs).
    single_seconds = sharded_seconds = float("inf")
    for _ in range(5):
        seconds, single = _timed(
            lambda: serve(perf_trace, encoder, steady, 1))
        single_seconds = min(single_seconds, seconds)
        seconds, sharded = _timed(
            lambda: serve(perf_trace, encoder, steady, 4))
        sharded_seconds = min(sharded_seconds, seconds)
    assert sharded.breakdown.total == single.breakdown.total == PERF_ACCESSES
    # Protected per-shard reclaim must not cost hit rate vs the
    # single-shard engine on the balanced trace.
    assert sharded.hit_rate > single.hit_rate - 0.05
    record_hotpath("manager_serving_steady_clock_sharded", PERF_ACCESSES,
                   sharded_seconds, ref_seconds=single_seconds,
                   num_shards=4, sharded_hit_rate=sharded.hit_rate,
                   single_shard_hit_rate=single.hit_rate, gated=True)
    rows = _report("Manager demand serving throughput "
                   "(steady state, 4-shard clock vs single-shard clock)",
                   sharded_seconds, single_seconds)
    if perf_budget > 0:
        ratio = single_seconds / sharded_seconds
        # 0.65: the per-shard id-compression layer (sharded memory no
        # longer pays N× the single-shard per-id footprint) costs a few
        # percent of translation arithmetic on every bulk boundary —
        # the gate moved 0.75 -> 0.65 in the same PR that removed the
        # N× memory, pricing the documented trade (quiet-host ratio
        # ~0.75-0.85) plus the shared-runner noise margin the old gate
        # never actually had.
        assert ratio >= 0.65, (
            f"sharded clock serving is only {ratio:.2f}x the single-shard "
            f"clock path (contract: >= 0.65x on the balanced perf trace "
            f"against the protected-reclaim single-shard baseline)")

    # Hot-shard imbalance: one contiguous band takes ~85% of accesses.
    hot_config = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=PERF_ACCESSES,
        seed=11)
    hot_trace = generate_hot_shard_trace(hot_config, num_shards=4,
                                         hot_shard=0, hot_fraction=0.85)
    hot_encoder = FeatureEncoder(config).fit(hot_trace)
    hot_steady = max(1, int(hot_trace.num_unique * 0.2))
    # Skew-matched capacity split: the hot shard (85% of traffic) gets
    # 85% of the slots — the ``shard_weights`` answer to the contiguous
    # router's imbalance, without giving up range locality.
    hot_weights = (0.85, 0.05, 0.05, 0.05)
    results = {}
    for label, shards, policy, weights in [
            ("single", 1, "contiguous", None),
            ("contiguous", 4, "contiguous", None),
            ("weighted", 4, "contiguous", hot_weights),
            ("modulo", 4, "modulo", None)]:
        seconds, stats = _timed(
            lambda s=shards, p=policy, w=weights: serve(
                hot_trace, hot_encoder, hot_steady, s, p, w), repeats=2)
        results[label] = (seconds, stats)
        record_hotpath(f"manager_serving_hot_shard_clock_{label}",
                       PERF_ACCESSES, seconds, num_shards=shards,
                       shard_policy=policy, hit_rate=stats.hit_rate,
                       **({"shard_weights": list(weights)} if weights
                          else {}))
    print()
    print(ascii_table(
        ["config", "accesses/sec", "hit rate"],
        [[label, PERF_ACCESSES / seconds, stats.hit_rate]
         for label, (seconds, stats) in results.items()],
        title="Hot-shard skew (85% of traffic on one contiguous band)"))
    # The skewed band hammers one contiguous-router shard; striping the
    # same ids across shards (modulo) must retain more of the hit rate.
    contiguous_rate = results["contiguous"][1].hit_rate
    modulo_rate = results["modulo"][1].hit_rate
    weighted_rate = results["weighted"][1].hit_rate
    assert modulo_rate >= contiguous_rate
    # Skew-matched weights must recover at least half the hit-rate gap
    # the uniform contiguous split gives up to modulo striping
    # (deterministic decision metric — always asserted, no perf gate).
    assert weighted_rate >= contiguous_rate + 0.5 * (modulo_rate
                                                     - contiguous_rate), (
        f"weighted contiguous hit rate {weighted_rate:.4f} recovers less "
        f"than half the uniform-contiguous ({contiguous_rate:.4f}) vs "
        f"modulo ({modulo_rate:.4f}) gap")
    benchmark(lambda: rows)


def test_drifting_hot_band_rebalancing_lift(perf_budget, benchmark,
                                            record_hotpath):
    """Online elastic rebalancing (PR 10) against a drifting hot band.

    The hot band walks one contiguous shard to the right each quarter
    of the trace (:func:`generate_drifting_hot_band_trace`), so *any*
    static ``shard_weights`` choice matches at most one phase and
    strands capacity on cold shards for the other three.  Three
    operating points, all 4-shard contiguous clock managers:

    * ``static`` — the uniform static split (``rebalance_interval=0``),
      the pre-rebalancer baseline;
    * ``adaptive`` — the online rebalancer: per-shard traffic EWMA at
      the gather, threshold trigger, live key migration between the
      compressed shard universes;
    * ``oracle`` — skew-matched ``ShardedBuffer.rebalance()`` calls
      issued at the (known) phase boundaries: perfect *timing*, but a
      fixed assumed split (85/5/5/5).  The online EWMA may legitimately
      beat it — it sizes shards to the *measured* mixture (the cold
      tail is Zipf-spread over the whole grid, so the true hot share
      is below 85%) — which only makes the gate easier to hold.

    The decision gate mirrors the hot-shard weighted-split gate:
    adaptive must recover at least half the static -> oracle hit-rate
    gap (deterministic metric — always asserted, no perf budget).  The
    adaptive lift over static is committed gated in
    ``BENCH_hotpaths.json`` (the lift must stay positive); the
    measured migration pause is recorded *ungated* next to it — the
    pause is workload truth to watch, not a regression gate.
    """
    config = RecMGConfig()
    num_shards, num_phases = 4, 4
    drift_config = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=PERF_ACCESSES,
        seed=11)
    trace = generate_drifting_hot_band_trace(drift_config,
                                             num_shards=num_shards,
                                             num_phases=num_phases)
    encoder = FeatureEncoder(config).fit(trace)
    capacity = max(1, int(trace.num_unique * 0.2))
    phase_length = -(-len(trace) // num_phases)

    def build(interval):
        return RecMGManager(capacity, encoder, config,
                            buffer_impl="clock", num_shards=num_shards,
                            shard_policy="contiguous",
                            rebalance_interval=interval,
                            rebalance_threshold=0.05)

    def serve_run(interval):
        manager = build(interval)
        manager.run(trace)
        return manager

    def serve_oracle():
        # Same block schedule as ``run``'s model-free bulk path (so the
        # three operating points differ only in when/how they
        # rebalance), but with perfect-knowledge migrations: at the
        # first block of each new phase, hand the hot band the bulk of
        # the capacity.  Donor-shrink victims are accounted like the
        # online driver accounts them.
        manager = build(0)
        dense = encoder.dense_ids(trace)
        block = manager._SERVE_BLOCK * num_shards
        hot_share = 0.85
        cold_share = (1.0 - hot_share) / (num_shards - 1)
        phase = 0
        for start in range(0, len(dense), block):
            if start // phase_length != phase:
                phase = start // phase_length
                weights = [cold_share] * num_shards
                weights[phase % num_shards] = hot_share
                shift = manager.buffer.rebalance(tuple(weights))
                manager.evictions += len(shift["evicted"])
            manager.serve_batch(dense[start:start + block])
        return manager

    # Check cadence: every other serving block (the bulk path serves
    # ``_SERVE_BLOCK * num_shards`` ids per block).
    interval = 2 * RecMGManager._SERVE_BLOCK * num_shards
    static_seconds, static = _timed(lambda: serve_run(0), repeats=2)
    adaptive_seconds, adaptive = _timed(
        lambda: serve_run(interval), repeats=2)
    oracle_seconds, oracle = _timed(serve_oracle, repeats=2)

    static_rate = static.breakdown.hit_rate
    adaptive_rate = adaptive.breakdown.hit_rate
    oracle_rate = oracle.breakdown.hit_rate
    summary = adaptive.serving_metrics.summary()
    print()
    print(ascii_table(
        ["config", "accesses/sec", "hit rate", "rebalances"],
        [["static", PERF_ACCESSES / static_seconds, static_rate, 0],
         ["adaptive", PERF_ACCESSES / adaptive_seconds, adaptive_rate,
          summary["rebalance_count"]],
         ["oracle", PERF_ACCESSES / oracle_seconds, oracle_rate,
          num_phases - 1]],
        title="Drifting hot band (walks one shard per quarter trace)"))

    assert static.breakdown.total == PERF_ACCESSES
    assert adaptive.breakdown.total == PERF_ACCESSES
    assert oracle.breakdown.total == PERF_ACCESSES
    # The static split must not silently rebalance, the online driver
    # must actually migrate, and migration must conserve capacity.
    assert static.serving_metrics.summary()["rebalance_count"] == 0
    assert summary["rebalance_count"] >= 1
    assert summary["rebalance_migrated_keys"] > 0
    assert sum(adaptive.buffer.shard_capacities) == capacity
    # Scenario validity: perfect-knowledge rebalancing must beat the
    # static split, or the drift is not actually punishing it.
    assert oracle_rate > static_rate
    # The headline decision gate: the online rebalancer recovers at
    # least half the static -> oracle gap without knowing the phase
    # schedule (deterministic metric — always asserted, no perf gate).
    assert adaptive_rate >= static_rate + 0.5 * (oracle_rate
                                                 - static_rate), (
        f"adaptive hit rate {adaptive_rate:.4f} recovers less than half "
        f"the static ({static_rate:.4f}) vs oracle ({oracle_rate:.4f}) "
        f"drifting-band gap")
    record_hotpath(
        "manager_serving_drifting_band_adaptive", PERF_ACCESSES,
        adaptive_seconds, gated=True, hit_rate=adaptive_rate,
        hit_rate_lift=adaptive_rate - static_rate,
        static_hit_rate=static_rate, oracle_hit_rate=oracle_rate,
        rebalance_count=summary["rebalance_count"],
        rebalance_migrated_keys=summary["rebalance_migrated_keys"],
        rebalance_pause_ms_total=summary["rebalance_pause_ms_total"],
        rebalance_pause_ms_max=summary["rebalance_pause_ms_max"])
    record_hotpath("manager_serving_drifting_band_static", PERF_ACCESSES,
                   static_seconds, hit_rate=static_rate)
    record_hotpath("manager_serving_drifting_band_oracle", PERF_ACCESSES,
                   oracle_seconds, hit_rate=oracle_rate,
                   rebalance_count=num_phases - 1)
    benchmark(lambda: summary)


def test_concurrent_serving_throughput(perf_trace, perf_budget, benchmark,
                                       record_hotpath):
    """Concurrent shard-worker serving vs the serial shard loop.

    ``concurrency="threads"`` dispatches the 4-shard steady-clock
    workload to shard-pinned worker threads and pipelines serving
    blocks (up to 8 in flight), while staying *bit-identical* to the
    serial shard-wise engine — counters and the per-access decision
    stream are asserted here, and the 40-seed differential in
    ``tests/test_sharding.py`` plus the stress suite in
    ``tests/test_serving_concurrent.py`` pin it exhaustively.

    The throughput gate is core-aware: with >= 2 cores the concurrent
    engine must reach 1.5x the serial loop; on a single core (this
    container, some CI runners) real parallelism is impossible, so the
    contract degrades to an overhead bound — the worker indirection,
    futures and pipelining may cost at most half the serial throughput
    (measured ~0.95-1.0x on one core: the pipeline hides most of the
    dispatch cost).  The recorded entry also carries the latency
    percentiles, the engine's in-flight pipeline-depth stats (distinct
    from the admission-queue depth, which this trace-driven run never
    samples) and per-shard utilization from
    :class:`repro.serving.metrics.ServingMetrics`, so tail latency is
    tracked in the bench artifact alongside throughput.
    """
    import os

    config = RecMGConfig()
    encoder = FeatureEncoder(config).fit(perf_trace)
    steady = max(1, int(perf_trace.num_unique * 0.2))

    def serve(concurrency):
        manager = RecMGManager(steady, encoder, config,
                               buffer_impl="clock", num_shards=4,
                               concurrency=concurrency)
        stats = manager.run(perf_trace, record_decisions=True)
        decisions = manager.last_decisions
        summary = manager.serving_metrics.summary(
            shard_busy_seconds=manager._pool.busy_seconds()
            if manager._pool is not None else None)
        manager.close()
        return stats, decisions, summary

    serial_seconds, (serial, serial_dec, _) = _timed(
        lambda: serve("serial"), repeats=3)
    threads_seconds, (threads, threads_dec, summary) = _timed(
        lambda: serve("threads"), repeats=3)
    # Decision identity is unconditional — it is the engine's contract.
    assert threads == serial
    assert np.array_equal(threads_dec, serial_dec)
    record_hotpath(
        "manager_serving_steady_clock_concurrent", PERF_ACCESSES,
        threads_seconds, ref_seconds=serial_seconds,
        num_shards=4, cpu_cores=os.cpu_count(),
        hit_rate=threads.hit_rate,
        latency_p50_ms=summary["latency_p50_ms"],
        latency_p95_ms=summary["latency_p95_ms"],
        latency_p99_ms=summary["latency_p99_ms"],
        inflight_depth_mean=summary["inflight_depth_mean"],
        inflight_depth_max=summary["inflight_depth_max"],
        shard_utilization=summary.get("shard_utilization"),
        gated=True)
    rows = _report("Manager demand serving throughput "
                   "(steady state, 4-shard clock: threads vs serial)",
                   threads_seconds, serial_seconds)
    if perf_budget > 0:
        ratio = serial_seconds / threads_seconds
        if (os.cpu_count() or 1) >= 2:
            assert ratio >= 1.5, (
                f"concurrent serving is only {ratio:.2f}x the serial "
                f"shard loop on {os.cpu_count()} cores (contract: >= "
                f"1.5x with real parallelism available)")
        else:
            assert ratio >= 0.5, (
                f"concurrent serving costs {1 / ratio:.2f}x the serial "
                f"shard loop on one core — dispatch overhead out of "
                f"bounds (contract: >= 0.5x without parallelism)")
    benchmark(lambda: rows)


def test_model_guided_serving(perf_budget, benchmark, record_hotpath):
    """Model-in-the-loop serving (PR 8): hit-rate lift of the priority
    providers over model-free serving, and the async provider's tail
    latency staying off the inference hook.

    Per scenario (:func:`repro.traces.model_guided_scenarios`: Zipf,
    hot-shard, multi-tenant — one shared seed-11 config), the first 30%
    of the trace trains a small :class:`CachingModel` on OPTgen labels;
    the remaining 70% is served three ways on the clock backend at a
    20% buffer:

    * ``priority_mode="none"`` — the model-free baseline (bit-identical
      to the provider-free engines);
    * ``"sync"`` — per-block inference on the serving thread.  The lift
      is deterministic, so ``sync > none`` is asserted unconditionally
      and the recorded entry is **lift-gated** (``gated=True`` with
      ``hit_rate_lift`` and no ``ref_seconds``): once committed, a
      positive lift may not vanish (see ``benchmarks/compare_bench.py``);
    * ``"async"`` — the background refresh table.  Its lift rides on
      refresh timing, so the unconditional floor is only "not worse
      than model-free beyond noise"; staleness must respect the
      ``pending_max + 1`` construction bound.

    The latency half drives the zipf scenario through
    :meth:`RecMGManager.serve_batch` blocks and compares percentiles:
    async p99 must beat sync p99 (inference off the critical path
    beats inference on it — its tail is at most one worker GIL hold,
    sync pays inference *every* block), and with real parallelism
    available (>= 2 cores) async p99 must also stay near the
    model-free p99.  On one core the GIL lets the refresh worker steal
    a serving window, so the cross-mode bound is the whole contract
    there (same core-aware pattern as the concurrent-serving gate).
    """
    import os

    base = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=PERF_ACCESSES,
        num_clusters=64, cluster_block=8, periodic_items=500,
        periodic_spacing=7, seed=11)
    config = RecMGConfig(hidden=32, hash_buckets=1024, caching_epochs=2,
                         max_train_chunks=500, buffer_impl="clock",
                         priority_refresh_blocks=2)
    rows = []
    latency = {}
    for name, trace in model_guided_scenarios(base):
        head, tail = trace.split(0.3)
        encoder = FeatureEncoder(config).fit(head)
        capacity = max(1, int(encoder.vocab_size * 0.2))
        labels = build_labels(head, capacity, config, encoder)
        chunks = encoder.encode_chunks(head)
        model = CachingModel(config, encoder.num_tables)
        train_caching_model(model, chunks,
                            caching_targets(chunks, labels), config)

        def serve(mode, caching_model):
            manager = RecMGManager(capacity, encoder, config,
                                   caching_model=caching_model,
                                   priority_mode=mode)
            stats = manager.run(tail, fast_serve=True)
            provider_stats = manager.priority_provider.stats()
            manager.close()
            return stats, provider_stats

        none_seconds, (none_stats, _) = _timed(
            lambda: serve("none", None), repeats=2)
        sync_seconds, (sync_stats, _) = _timed(
            lambda: serve("sync", model), repeats=2)
        async_seconds, (async_stats, async_provider) = _timed(
            lambda: serve("async", model), repeats=2)

        sync_lift = sync_stats.hit_rate - none_stats.hit_rate
        async_lift = async_stats.hit_rate - none_stats.hit_rate
        # Deterministic decision metric — asserted regardless of
        # --perf-budget: per-block model guidance must beat model-free
        # serving on every committed scenario.
        assert sync_lift > 0, (
            f"sync model-guided serving does not lift hit rate on "
            f"{name}: {sync_stats.hit_rate:.4f} vs model-free "
            f"{none_stats.hit_rate:.4f}")
        # The async table's lift depends on refresh timing; the
        # unconditional floor is only "no worse than model-free beyond
        # noise" — a cold table degrades to -1 bits, i.e. model-free.
        assert async_lift >= -0.01, (
            f"async model-guided serving fell below model-free on "
            f"{name}: {async_stats.hit_rate:.4f} vs "
            f"{none_stats.hit_rate:.4f}")
        # Lift-gated entry: hit_rate_lift and no ref_seconds, so
        # compare_bench gates the lift, not a speedup.
        record_hotpath(f"model_guided_{name}_sync", len(tail),
                       sync_seconds, gated=True,
                       hit_rate=sync_stats.hit_rate,
                       model_free_hit_rate=none_stats.hit_rate,
                       hit_rate_lift=sync_lift)
        record_hotpath(f"model_guided_{name}_async", len(tail),
                       async_seconds,
                       hit_rate=async_stats.hit_rate,
                       model_free_hit_rate=none_stats.hit_rate,
                       hit_rate_lift=async_lift,
                       table_coverage=async_provider["table_coverage"],
                       dropped_blocks=async_provider["dropped_blocks"])
        rows.append([name, none_stats.hit_rate, sync_stats.hit_rate,
                     async_stats.hit_rate, sync_lift, async_lift])

        if name == "zipf":
            # Latency half: the same serving stream through
            # serve_batch blocks, percentiles from ServingMetrics.
            dense = encoder.dense_ids(tail)

            def batched(mode, caching_model):
                manager = RecMGManager(capacity, encoder, config,
                                       caching_model=caching_model,
                                       priority_mode=mode)
                for lo in range(0, dense.size, 512):
                    manager.serve_batch(dense[lo:lo + 512])
                summary = manager.serving_metrics.summary()
                manager.close()
                return summary

            for mode, caching_model in (("none", None), ("sync", model),
                                        ("async", model)):
                latency[mode] = batched(mode, caching_model)

    stale_max = latency["async"]["staleness_max"]
    # Construction bound: the drop-oldest queue caps refresh lag at
    # pending_max queued blocks plus the one in flight.
    assert stale_max <= config.priority_pending_max + 1, (
        f"async staleness {stale_max} exceeds the pending_max + 1 "
        f"construction bound ({config.priority_pending_max + 1})")
    record_hotpath(
        "model_guided_serve_batch_latency", PERF_ACCESSES,
        latency["async"]["latency_mean_ms"] / 1e3, cpu_cores=os.cpu_count(),
        none_p50_ms=latency["none"]["latency_p50_ms"],
        none_p99_ms=latency["none"]["latency_p99_ms"],
        sync_p50_ms=latency["sync"]["latency_p50_ms"],
        sync_p99_ms=latency["sync"]["latency_p99_ms"],
        async_p50_ms=latency["async"]["latency_p50_ms"],
        async_p99_ms=latency["async"]["latency_p99_ms"],
        async_staleness_mean=latency["async"]["staleness_mean"],
        async_staleness_max=stale_max,
        async_inference_batches=latency["async"]["inference_batches"],
        sync_inference_batches=latency["sync"]["inference_batches"])
    print()
    print(ascii_table(
        ["scenario", "model-free", "sync", "async", "sync lift",
         "async lift"], rows,
        title="Model-guided serving hit rate (clock backend, 20% buffer)"))
    print(ascii_table(
        ["mode", "p50 ms", "p99 ms"],
        [[mode, latency[mode]["latency_p50_ms"],
          latency[mode]["latency_p99_ms"]] for mode in latency],
        title="serve_batch latency by priority mode (zipf)"))
    if perf_budget > 0:
        assert (latency["async"]["latency_p99_ms"]
                < latency["sync"]["latency_p99_ms"]), (
            "async p99 should beat sync p99 — off-critical-path "
            "inference is the async provider's whole contract")
        assert (latency["async"]["latency_p50_ms"]
                < latency["none"]["latency_p50_ms"] * 2.0), (
            "async median latency drifted past 2x model-free: the "
            "table gather is supposed to be a cheap bulk read")
        if (os.cpu_count() or 1) >= 2:
            assert (latency["async"]["latency_p99_ms"]
                    < latency["none"]["latency_p99_ms"] * 3.0), (
                "with real parallelism available, async p99 must stay "
                "near model-free — inference belongs on another core")
    benchmark(lambda: rows)


def test_pipelined_provider_sink_throughput(perf_trace, perf_budget,
                                            benchmark, record_hotpath):
    """The un-serialized provider sink (PR 9): pipelined concurrent
    serving must survive an active priority provider.

    Before this PR an active provider forced ``run()`` onto the
    per-block barrier loop — every block waited for the slowest shard
    *and* the whole-buffer priority apply before the next block could
    dispatch, serializing exactly the engine the concurrent front-end
    exists to parallelize.  The per-shard sink
    (:meth:`RecMGManager._submit_sink`) splits each block's bits along
    the shard route and queues the applies behind the same block's
    serve jobs, so the 8-deep pipeline keeps its depth under
    ``priority_mode="async"``.

    Measured: the 4-shard clock workload under the async provider,
    pipelined (default) vs the barrier form
    (``_pipeline_sink = False`` — the escape hatch the differential in
    ``tests/test_sink_pipelining.py`` uses to prove bit-identity).
    The gate is core-aware like the provider-free concurrent gate:
    with >= 2 cores the pipelined form must at least match the
    barrier form (>= 1.0x — it strictly dominates once shards can
    actually overlap); on one core the contract degrades to the same
    0.5x overhead bound.  The pipeline engaging at all is asserted
    unconditionally via the recorded in-flight depth.
    """
    import os

    config = RecMGConfig(hidden=32, hash_buckets=1024, caching_epochs=2,
                         max_train_chunks=500, buffer_impl="clock",
                         priority_refresh_blocks=2, num_shards=4,
                         concurrency="threads")
    head, tail = perf_trace.split(0.3)
    encoder = FeatureEncoder(config).fit(head)
    capacity = max(1, int(encoder.vocab_size * 0.2))
    labels = build_labels(head, capacity, config, encoder)
    chunks = encoder.encode_chunks(head)
    model = CachingModel(config, encoder.num_tables)
    train_caching_model(model, chunks, caching_targets(chunks, labels),
                        config)

    def serve(pipeline):
        manager = RecMGManager(capacity, encoder, config,
                               caching_model=model, priority_mode="async")
        if not pipeline:
            manager._pipeline_sink = False
        stats = manager.run(tail, fast_serve=True)
        summary = manager.serving_metrics.summary()
        manager.close()
        return stats, summary

    # Interleaved best-of: the async refresh worker makes either form
    # sensitive to transient load (its GIL slices land wherever the
    # scheduler puts them), so alternate the two measurements rather
    # than timing one after the other — a slow window then inflates
    # both candidates, not just one side of the gated ratio.
    barrier_seconds = pipelined_seconds = float("inf")
    for _ in range(3):
        seconds, (barrier_stats, barrier_summary) = _timed(
            lambda: serve(False))
        barrier_seconds = min(barrier_seconds, seconds)
        seconds, (pipelined_stats, summary) = _timed(lambda: serve(True))
        pipelined_seconds = min(pipelined_seconds, seconds)
    # The barrier form must not have recorded pipeline depth, and the
    # pipelined form must have actually kept blocks in flight — the
    # whole point of the per-shard sink.
    assert barrier_summary["inflight_depth_max"] == 0
    assert summary["inflight_depth_max"] >= 2, (
        "provider sink still forces the barrier path: no pipeline "
        "depth recorded under priority_mode='async'")
    record_hotpath(
        "pipelined_provider_sink_async", len(tail), pipelined_seconds,
        ref_seconds=barrier_seconds, num_shards=4,
        cpu_cores=os.cpu_count(),
        hit_rate=pipelined_stats.hit_rate,
        barrier_hit_rate=barrier_stats.hit_rate,
        inflight_depth_mean=summary["inflight_depth_mean"],
        inflight_depth_max=summary["inflight_depth_max"],
        gated=True)
    rows = _report("Pipelined provider sink (async, 4-shard clock: "
                   "pipelined vs per-block barrier)",
                   pipelined_seconds, barrier_seconds)
    if perf_budget > 0:
        ratio = barrier_seconds / pipelined_seconds
        if (os.cpu_count() or 1) >= 2:
            assert ratio >= 1.0, (
                f"pipelined provider sink is {ratio:.2f}x the barrier "
                f"form on {os.cpu_count()} cores — un-serializing the "
                f"sink must not lose throughput with parallelism "
                f"available")
        else:
            assert ratio >= 0.5, (
                f"pipelined provider sink costs {1 / ratio:.2f}x the "
                f"barrier form on one core — pipeline bookkeeping "
                f"overhead out of bounds (contract: >= 0.5x)")
    benchmark(lambda: rows)


def test_model_guided_low_capacity_lift(perf_budget, benchmark,
                                        record_hotpath):
    """Capacity-matched online labels (PR 9): the low-capacity lift
    floor.

    OPTgen keep bits are a function of the buffer capacity, so a model
    trained on 20%-capacity labels is mis-calibrated when the serving
    buffer is far smaller.  Per committed scenario, the 30% head
    trains the usual 20%-label model, then
    :func:`repro.core.training.finetune_for_capacity` relabels the
    head at the 5% *serving* capacity and fine-tunes a clone; the 70%
    tail is served model-free, with the capacity-mismatched model,
    with the capacity-matched one, and with the matched model under
    the :class:`repro.serving.priorities.LiftGuard`.

    Unconditional (deterministic, sync-mode) asserts:

    * the capacity-matched model lifts over model-free on every
      scenario — the acceptance bar for this PR;
    * capacity-matching never does worse than serving the mismatched
      20%-label model;
    * the guard keeps the floor: guided-with-guard never falls below
      model-free (its control probes cost a slice of positive lift,
      which is why the guard is opt-in rather than default).

    The recorded entries are lift-gated (``hit_rate_lift``, no
    ``ref_seconds``): once a positive low-capacity lift is committed
    it may not vanish (``benchmarks/compare_bench.py``).
    """
    from repro.core.training import finetune_for_capacity

    base = SyntheticTraceConfig(
        num_tables=8, rows_per_table=4096, num_accesses=PERF_ACCESSES,
        num_clusters=64, cluster_block=8, periodic_items=500,
        periodic_spacing=7, seed=11)
    config = RecMGConfig(hidden=32, hash_buckets=1024, caching_epochs=2,
                         max_train_chunks=500, buffer_impl="clock",
                         priority_refresh_blocks=2)
    rows = []
    for name, trace in model_guided_scenarios(base):
        head, tail = trace.split(0.3)
        encoder = FeatureEncoder(config).fit(head)
        cap20 = max(1, int(encoder.vocab_size * 0.2))
        low_capacity = max(1, int(encoder.vocab_size * 0.05))
        labels = build_labels(head, cap20, config, encoder)
        chunks = encoder.encode_chunks(head)
        model = CachingModel(config, encoder.num_tables)
        train_caching_model(model, chunks,
                            caching_targets(chunks, labels), config)
        tuned, _ = finetune_for_capacity(
            model, encoder.dense_ids(head), low_capacity, config,
            encoder, epochs=1)

        def serve(caching_model, mode, lift_guard=0):
            cfg = RecMGConfig(
                hidden=32, hash_buckets=1024, caching_epochs=2,
                max_train_chunks=500, buffer_impl="clock",
                priority_refresh_blocks=2,
                priority_lift_guard=lift_guard)
            manager = RecMGManager(low_capacity, encoder, cfg,
                                   caching_model=caching_model,
                                   priority_mode=mode)
            stats = manager.run(tail, fast_serve=True)
            guard = manager.lift_guard
            manager.close()
            return stats, guard

        free_seconds, (free_stats, _) = _timed(
            lambda: serve(None, "none"), repeats=2)
        mismatched_stats, _ = serve(model, "sync")
        tuned_seconds, (tuned_stats, _) = _timed(
            lambda: serve(tuned, "sync"), repeats=2)
        guarded_stats, guard = serve(tuned, "sync", lift_guard=1)

        tuned_lift = tuned_stats.hit_rate - free_stats.hit_rate
        assert tuned_lift > 0, (
            f"capacity-matched model does not lift hit rate at 5% "
            f"capacity on {name}: {tuned_stats.hit_rate:.4f} vs "
            f"model-free {free_stats.hit_rate:.4f}")
        assert tuned_stats.hit_rate >= mismatched_stats.hit_rate, (
            f"capacity-matched fine-tuning lost to the mismatched "
            f"20%-label model on {name}")
        assert guarded_stats.hit_rate >= free_stats.hit_rate, (
            f"lift guard broke the model-free floor on {name}: "
            f"{guarded_stats.hit_rate:.4f} vs "
            f"{free_stats.hit_rate:.4f}")
        record_hotpath(
            f"model_guided_{name}_lowcap_sync", len(tail),
            tuned_seconds, gated=True,
            hit_rate=tuned_stats.hit_rate,
            model_free_hit_rate=free_stats.hit_rate,
            mismatched_hit_rate=mismatched_stats.hit_rate,
            guarded_hit_rate=guarded_stats.hit_rate,
            guard_trips=guard.stats()["trips"],
            hit_rate_lift=tuned_lift)
        rows.append([name, free_stats.hit_rate,
                     mismatched_stats.hit_rate, tuned_stats.hit_rate,
                     guarded_stats.hit_rate, tuned_lift])
    print()
    print(ascii_table(
        ["scenario", "model-free", "20%-labels", "cap-matched",
         "matched+guard", "lift"], rows,
        title="Model-guided serving hit rate at 5% capacity "
              "(clock backend)"))
    benchmark(lambda: rows)


def test_lru_breakdown_throughput(perf_trace, perf_budget, benchmark,
                                  record_hotpath):
    capacity = max(1, int(perf_trace.num_unique * 0.2))
    fast_seconds, fast = _timed(
        lambda: run_breakdown(perf_trace, capacity), repeats=3)
    ref_seconds, reference = _timed(
        lambda: run_breakdown(perf_trace, capacity, engine="reference"))
    assert fast == reference
    record_hotpath("lru_breakdown_single", PERF_ACCESSES, fast_seconds,
                   ref_seconds=ref_seconds)
    rows = _report("LRU breakdown throughput (no prefetcher)",
                   fast_seconds, ref_seconds)
    # Single capacity: the closed-form path must stay in the same league
    # as the loop (the loop is C-dict backed, so parity is the floor,
    # not an embarrassment; the sweep below is where amortization wins).
    if perf_budget > 0:
        assert fast_seconds < ref_seconds * 1.5, \
            "vectorized LRU breakdown fell behind the simulation loop"
    benchmark(lambda: rows)


def test_lru_breakdown_sweep_throughput(perf_trace, perf_budget, benchmark,
                                        record_hotpath):
    """Capacity sweeps reuse one distance computation: the vectorized
    path must clearly beat re-simulating the trace per capacity."""
    fractions = [0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40]
    capacities = [max(1, int(perf_trace.num_unique * fraction))
                  for fraction in fractions]
    fast_seconds, fast = _timed(
        lambda: run_breakdown_sweep(perf_trace, capacities), repeats=2)
    ref_seconds, reference = _timed(
        lambda: [run_breakdown(perf_trace, capacity, engine="reference")
                 for capacity in capacities])
    assert fast == reference
    record_hotpath("lru_breakdown_sweep",
                   PERF_ACCESSES * len(capacities), fast_seconds,
                   ref_seconds=ref_seconds, capacities=len(capacities),
                   gated=True)
    rows = _report(f"LRU breakdown sweep throughput ({len(capacities)} "
                   "capacities)", fast_seconds, ref_seconds)
    if perf_budget > 0:
        assert ref_seconds / fast_seconds >= 3.0, \
            "sweep vectorization should amortize the distance computation"
    benchmark(lambda: rows)
