"""Fig. 10: prefetch coverage (paper Eq. 2, windowed unique overlap).

Paper shape: Bingo and Domino cover almost nothing; the ML prefetchers
(TransFetch, RecMG) cover meaningfully more.
"""

import numpy as np

from repro.analysis import ascii_table

# Reuse the evaluations computed for Fig. 9 (same runs report both).
from test_fig9_correctness import evaluations  # noqa: F401


def test_fig10(benchmark, evaluations):  # noqa: F811
    strategies = ["Bingo", "Domino", "TransFetch", "RecMG"]
    rows = []
    for name, per_dataset in evaluations.items():
        rows.append([name] + [per_dataset[s].coverage for s in strategies])
    means = {s: np.mean([per[s].coverage for per in evaluations.values()])
             for s in strategies}
    rows.append(["MEAN"] + [means[s] for s in strategies])
    print()
    print(ascii_table(["dataset"] + strategies, rows,
                      title="Fig. 10: prefetch coverage (Eq. 2)"))
    assert means["Bingo"] < 0.05
    assert means["RecMG"] >= 0.0
    benchmark(lambda: means)
