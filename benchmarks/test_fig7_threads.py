"""Fig. 7: caching/prefetch model serving throughput vs CPU threads.

Paper shape: near-linear scaling from 1 to 64 threads.
"""


from repro.analysis import ascii_table
from repro.core import simulate_thread_throughput

THREADS = [1, 4, 8, 16, 32, 48, 64]


def test_fig7(benchmark):
    throughputs = benchmark(
        lambda: [simulate_thread_throughput(t) for t in THREADS]
    )
    print()
    print(ascii_table(
        ["threads", "throughput (idx/s)", "scaling efficiency"],
        [[t, round(v), f"{v / (throughputs[0] * t):.0%}"]
         for t, v in zip(THREADS, throughputs)],
        title="Fig. 7: model throughput vs threads",
    ))
    # Monotone increase, near-linear early, sublinear at 64.
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[3] / throughputs[0] > 12     # 16 threads
    assert throughputs[-1] / throughputs[0] < 64    # roll-off
